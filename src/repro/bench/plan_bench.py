"""Batch derivation-planner benchmark: shared tree vs independent runs.

The planner's claim is throughput: N distinct-but-related orders over
one source cost far fewer comparisons as a shared derivation tree —
each order modified from its cheapest already-produced relative — than
as N independent ``Sort`` executions.  This module measures exactly
that, wall-clock, on the serve benchmark's duplicate-heavy table: for
each batch size it times every order executed independently (the
serving layer's pre-planner behavior), then the same batch through
:func:`repro.plan.derive_batch` (planning overhead included), and
verifies every planned output bit-identical to its solo run — rows and
codes always, comparison counters too for nodes derived straight from
the source.

The committed artifact is ``BENCH_plan.json``; the CI gate requires
``fidelity_ok`` always and, at the committed scale (>= 2^16 rows), a
>= 1.5x geomean speedup.  Smoke runs at smaller scales gate on
fidelity only — wall-clock ratios at a few thousand rows are noise.
"""

from __future__ import annotations

import itertools
import json
import platform
import time

from ..engine.scans import TableScan
from ..engine.sort_op import Sort
from ..exec import ExecutionConfig
from ..model import Schema, SortSpec, Table
from ..plan import derive_batch
from ..workloads.generators import random_table

_SCHEMA = Schema.of("A", "B", "C", "D")
_DOMAINS = {"A": 32, "B": 64, "C": 256, "D": 8}
#: Geomean wall-clock gate at the committed scale.
GATE_MIN_GEOMEAN = 1.5
#: Row count at and above which the speedup gate applies.
GATE_MIN_ROWS = 1 << 16


def related_orders(columns, k: int) -> list[SortSpec]:
    """``k`` distinct orders related to ``columns``: the rotations
    first (the cheapest family — long shared prefixes between
    neighbors), then the remaining permutations, identity excluded."""
    cols = tuple(columns)
    seen = {cols}
    out: list[SortSpec] = []
    for i in range(1, len(cols)):
        rotation = cols[i:] + cols[:i]
        if rotation not in seen:
            seen.add(rotation)
            out.append(SortSpec.of(*rotation))
            if len(out) == k:
                return out
    for perm in itertools.permutations(cols):
        if perm not in seen:
            seen.add(perm)
            out.append(SortSpec.of(*perm))
            if len(out) == k:
                return out
    raise ValueError(
        f"only {len(out)} related orders exist for {len(cols)} columns"
    )


def _solo(source: Table, spec: SortSpec, cfg: ExecutionConfig):
    op = Sort(TableScan(source), spec, config=cfg)
    out = op.to_table()
    return out, op.stats.as_dict()


def run_plan_trajectory(
    n_rows: int,
    seed: int = 0,
    batch_sizes: tuple = (4, 8, 16),
    config: ExecutionConfig | None = None,
) -> dict:
    """The full sweep; returns the JSON-ready record."""
    cfg = config if config is not None else ExecutionConfig(cache="off")
    table = random_table(
        _SCHEMA, n_rows,
        domains=[_DOMAINS[c] for c in _SCHEMA.columns],
        seed=seed,
    )
    base = SortSpec.of(*_SCHEMA.columns)
    source = Sort(TableScan(table), base, config=cfg).to_table()

    cells = []
    fidelity_problems: list[str] = []
    for k in batch_sizes:
        orders = related_orders(_SCHEMA.columns, k)

        begin = time.perf_counter()
        references = [_solo(source, spec, cfg) for spec in orders]
        wall_independent = time.perf_counter() - begin

        begin = time.perf_counter()
        result = derive_batch(source, orders, config=cfg)
        wall_planned = time.perf_counter() - begin

        for spec, (ref_table, ref_stats) in zip(orders, references):
            node = result.result_for(spec)
            label = ",".join(str(c) for c in spec.columns)
            if node.table.rows != ref_table.rows:
                fidelity_problems.append(
                    f"batch {k}, order {label}: rows diverged"
                )
            if node.table.ovcs != ref_table.ovcs:
                fidelity_problems.append(
                    f"batch {k}, order {label}: codes diverged"
                )
            parent = result.plan.nodes[result.plan.nodes[
                result.plan.spec_nodes[spec]].parent]
            if (
                parent.kind == "source"
                and node.stats_delta.as_dict() != ref_stats
            ):
                fidelity_problems.append(
                    f"batch {k}, order {label}: source-derived counters"
                    f" diverged"
                )

        cells.append({
            "batch": k,
            "wall_independent_s": round(wall_independent, 4),
            "wall_planned_s": round(wall_planned, 4),
            "speedup": round(wall_independent / wall_planned, 3)
            if wall_planned > 0 else float("inf"),
            "est_speedup": round(min(result.plan.est_speedup, 1e6), 3),
            "sibling_edges": result.plan.sibling_edges(),
            "fallbacks": result.fallbacks,
        })

    speedups = [c["speedup"] for c in cells]
    geomean = 1.0
    for s in speedups:
        geomean *= s
    geomean = geomean ** (1.0 / len(speedups)) if speedups else 0.0
    return {
        "n_rows": n_rows,
        "seed": seed,
        "python": platform.python_version(),
        "batch_sizes": list(batch_sizes),
        "cells": cells,
        "min_speedup": round(min(speedups), 3) if speedups else 0.0,
        "geomean_speedup": round(geomean, 3),
        "gate_min_geomean": (
            GATE_MIN_GEOMEAN if n_rows >= GATE_MIN_ROWS else None
        ),
        "fidelity_ok": not fidelity_problems,
        "fidelity_problems": fidelity_problems,
    }


def check_plan_record(record: dict) -> list[str]:
    """CI-gate findings for a planner record (empty = pass)."""
    problems = list(record.get("fidelity_problems", []))
    gate = record.get("gate_min_geomean")
    if gate is not None and record["geomean_speedup"] < gate:
        problems.append(
            f"geomean speedup {record['geomean_speedup']}x below the "
            f"{gate}x gate at {record['n_rows']:,} rows"
        )
    return problems


def write_plan_trajectory(path: str, record: dict) -> None:
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")


def format_plan_summary(record: dict) -> list[dict]:
    """Display rows for :func:`repro.bench.harness.format_table`."""
    return [
        {
            "batch": cell["batch"],
            "independent_s": cell["wall_independent_s"],
            "planned_s": cell["wall_planned_s"],
            "speedup": cell["speedup"],
            "est_speedup": cell["est_speedup"],
            "sibling_edges": cell["sibling_edges"],
            "fallbacks": cell["fallbacks"],
        }
        for cell in record["cells"]
    ]
