"""Reference-vs-fast benchmark trajectory: one JSON artifact per run.

The fast path's acceptance bar is wall-clock (>= 3x on the Figure 10
and Figure 11 workloads at the default 2^16 scale) *plus* untouched
comparison economics on the reference path.  This module measures both
in one sweep and emits a machine-readable record — committed as
``BENCH_fastpath.json`` at the repo root — so later sessions can track
the trajectory instead of re-deriving it.

Each cell is timed with both engines on the *same* generated table;
the fast run is also checked for bit-identical rows and codes against
the reference result, recorded per cell as ``fidelity_ok`` (and
aggregated at the top level), so a regression in either speed or
fidelity shows up in the artifact — and the CLI/benchmark drivers exit
non-zero on any fidelity failure, gating CI.
"""

from __future__ import annotations

import json
import math
import platform
import time
from typing import Sequence

from ..core.modify import modify_sort_order
from ..exec import ExecutionConfig
from ..obs import METRICS
from ..ovc.stats import ComparisonStats
from ..workloads.generators import (
    fig10_output_spec,
    fig10_table,
    fig11_output_spec,
    fig11_table,
)

_REFERENCE = ExecutionConfig(engine="reference")
_FAST = ExecutionConfig(engine="fast")

FIG10_CELLS = tuple(
    (decide, list_len) for decide in ("first", "last") for list_len in (2, 8, 16)
)
FIG11_CELLS = tuple(
    (n_segments, method)
    for n_segments in (2, 512)
    for method in ("segment_sort", "merge_runs", "combined")
)


def _time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _metrics_snapshot(run) -> dict:
    """Run ``run()`` with the metrics registry on; return its snapshot.

    Scoped to *untimed* verification runs only, so the registry's
    bookkeeping never contaminates the timed measurements.  Restores
    the registry's prior enabled state.
    """
    was_enabled = METRICS.enabled
    METRICS.enable(clear=True)
    try:
        run()
        return METRICS.as_dict()
    finally:
        METRICS.reset()
        if not was_enabled:
            METRICS.disable()


def _cell(
    label: str, table, spec, method: str, repeats: int,
    collect_metrics: bool = False,
) -> dict:
    """Time one (workload, method) cell with both engines.

    Returns the label, best-of-``repeats`` seconds per engine, the
    speedup, and the reference engine's comparison counters; with
    ``collect_metrics`` also a metrics snapshot of the (untimed)
    reference verification run.
    """
    stats = ComparisonStats()
    results: dict = {}

    def reference_run() -> None:
        results["reference"] = modify_sort_order(
            table, spec, method=method, stats=stats, config=_REFERENCE
        )

    if collect_metrics:
        metrics = _metrics_snapshot(reference_run)
    else:
        metrics = None
        reference_run()
    reference = results["reference"]
    fast = modify_sort_order(table, spec, method=method, config=_FAST)
    fidelity_ok = reference.rows == fast.rows and reference.ovcs == fast.ovcs
    ref_s = _time(
        lambda: modify_sort_order(
            table, spec, method=method, stats=ComparisonStats(),
            config=_REFERENCE,
        ),
        repeats,
    )
    fast_s = _time(
        lambda: modify_sort_order(table, spec, method=method, config=_FAST),
        repeats,
    )
    cell = {
        "label": label,
        "reference_seconds": round(ref_s, 4),
        "fast_seconds": round(fast_s, 4),
        "speedup": round(ref_s / fast_s, 2),
        "fidelity_ok": fidelity_ok,
        "row_comparisons": stats.row_comparisons,
        "column_comparisons": stats.column_comparisons,
        "ovc_comparisons": stats.ovc_comparisons,
    }
    if metrics is not None:
        cell["metrics"] = metrics
    return cell


def run_trajectory(
    n_rows: int,
    seed: int = 0,
    repeats: int = 3,
    fig10_cells: Sequence[tuple] = FIG10_CELLS,
    fig11_cells: Sequence[tuple] = FIG11_CELLS,
    collect_metrics: bool = False,
) -> dict:
    """The full reference-vs-fast sweep; returns the JSON-ready record.

    With ``collect_metrics`` each cell additionally embeds a metrics
    snapshot (merge fan-ins, segment sizes, comparison counters) taken
    during its untimed reference verification run.
    """
    cells = []
    for decide, list_len in fig10_cells:
        table = fig10_table(
            n_rows, list_len, decide=decide, n_runs=min(512, n_rows), seed=seed
        )
        cells.append(
            _cell(
                f"fig10 {decide}-decides len={list_len}",
                table,
                fig10_output_spec(list_len),
                "merge_runs",
                repeats,
                collect_metrics=collect_metrics,
            )
        )
    for n_segments, method in fig11_cells:
        n_segments = min(n_segments, max(n_rows // 2, 1))
        table = fig11_table(n_rows, n_segments, seed=seed)
        cells.append(
            _cell(
                f"fig11 s={n_segments} {method}",
                table,
                fig11_output_spec(8),
                method,
                repeats,
                collect_metrics=collect_metrics,
            )
        )
    speedups = [c["speedup"] for c in cells]
    return {
        "n_rows": n_rows,
        "seed": seed,
        "repeats": repeats,
        "python": platform.python_version(),
        "fidelity_ok": all(c["fidelity_ok"] for c in cells),
        "min_speedup": min(speedups),
        "geomean_speedup": round(
            math.exp(sum(math.log(s) for s in speedups) / len(speedups)), 2
        ),
        "cells": cells,
    }


def write_trajectory(path: str, record: dict) -> None:
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
