"""Order-service benchmark: duplicate-heavy closed-loop load.

The serving layer's acceptance bar is work sharing under concurrency:
with 16 closed-loop threads spread over 4 distinct target orders (so
each order is requested by 4 threads at once), the service must answer
every request bit-identically to a serial uncached execution while
running strictly fewer sorts than it admits requests — duplicates
coalesce onto in-flight executions and sequential repeats hit the
order cache.  This module measures exactly that and emits a
machine-readable record, committed as ``BENCH_serve.json`` at the repo
root.

The record carries:

* **executions_per_request** — the headline ratio (1.0 means no
  sharing at all; the gate requires < 1.0);
* **coalesced_requests** — duplicates that rode on another request's
  in-flight execution (the gate requires > 0);
* **latency_ms p50/p99** — per-request submit-to-response latency
  under the duplicate-heavy load;
* **fidelity_ok** — one served response per order compared field by
  field (rows, offset-value codes, comparison counters) against a
  serial uncached :class:`~repro.engine.sort_op.Sort`.

``check_serve_record`` returns the CI-gate findings; the CLI
(``python -m repro bench --serve``) exits non-zero on any.
"""

from __future__ import annotations

import json
import platform

from ..engine.scans import TableScan
from ..engine.sort_op import Sort
from ..exec import ExecutionConfig
from ..model import Schema, SortSpec, Table
from ..serve import OrderService, default_orders, run_load
from ..workloads.generators import random_table

_SCHEMA = Schema.of("A", "B", "C", "D")
_DOMAINS = {"A": 32, "B": 64, "C": 256, "D": 8}


def _serial_reference(table: Table, spec: SortSpec) -> tuple:
    """(rows, ovcs, stats) of a solo uncached execution — the contract."""
    op = Sort(TableScan(table), spec, config=ExecutionConfig(cache="off"))
    out = op.to_table()
    return out.rows, out.ovcs, op.stats.as_dict()


def verify_fidelity(
    service: OrderService,
    table: Table,
    orders: list[SortSpec],
    check_stats: bool = True,
) -> list[str]:
    """One served response per order vs its serial uncached reference.

    Rows and offset-value codes must match bit for bit always.
    Comparison counters match only on the uncached path
    (``check_stats=True``): a warm order cache legitimately replays the
    counters of the (possibly cheaper modify-from-cache) execution that
    installed the entry — exactly what a direct ``order_by`` against
    the same warm cache would report.
    """
    problems = []
    for spec in orders:
        rows, ovcs, stats = _serial_reference(table, spec)
        resp = service.order_by(table, spec)
        label = ",".join(str(c) for c in spec.columns)
        if resp.table.rows != rows:
            problems.append(f"order {label}: rows diverged")
        if resp.table.ovcs != ovcs:
            problems.append(f"order {label}: offset-value codes diverged")
        if check_stats and resp.stats.as_dict() != stats:
            problems.append(f"order {label}: comparison counters diverged")
    return problems


def run_serve_trajectory(
    n_rows: int,
    seed: int = 0,
    threads: int = 16,
    requests_per_thread: int = 8,
    n_orders: int = 4,
    config: ExecutionConfig | None = None,
) -> dict:
    """The full load + fidelity sweep; returns the JSON-ready record."""
    table = random_table(
        _SCHEMA, n_rows,
        domains=[_DOMAINS[c] for c in _SCHEMA.columns],
        seed=seed,
    )
    orders = default_orders(table, n_orders)
    cfg = config if config is not None else ExecutionConfig(
        cache="on",
        service_queue_depth=max(64, 2 * threads),
    )
    from ..cache import configure_cache, reset_cache

    if cfg.cache != "off":
        configure_cache(budget=cfg.cache_budget, ttl=cfg.cache_ttl)
    try:
        with OrderService(cfg) as service:
            report = run_load(
                service, table, orders,
                threads=threads, requests_per_thread=requests_per_thread,
            )
            # Warm-path fidelity: rows and codes vs serial uncached
            # (the counters are the installing execution's replay —
            # see verify_fidelity).
            fidelity_problems = verify_fidelity(
                service, table, orders, check_stats=cfg.cache == "off"
            )
        # Uncached-path fidelity: the full bit-identity contract,
        # counters included, through a service that cannot be
        # cache-assisted.
        if cfg.cache != "off":
            with OrderService(cfg.with_(cache="off")) as bare:
                fidelity_problems += verify_fidelity(bare, table, orders)
        # Batched phase: the same load through the micro-batching
        # planner path against a fresh cache, for latency deltas.
        # Rows and codes stay bit-identical; counters describe the
        # (cheaper) derivation work, so check_stats stays off — the
        # same contract as the warm-cache path above.
        if cfg.cache != "off":
            reset_cache()
            configure_cache(budget=cfg.cache_budget, ttl=cfg.cache_ttl)
        batched_cfg = cfg.with_(
            plan_window_ms=(
                cfg.plan_window_ms if cfg.plan_window_ms is not None
                else 25.0
            )
        )
        with OrderService(batched_cfg) as batched:
            batched_report = run_load(
                batched, table, orders,
                threads=threads, requests_per_thread=requests_per_thread,
            )
            batched_problems = verify_fidelity(
                batched, table, orders, check_stats=False
            )
            batched_counters = batched.counters()
        fidelity_problems += [f"batched: {p}" for p in batched_problems]
    finally:
        if cfg.cache != "off":
            reset_cache()
    return {
        "n_rows": n_rows,
        "seed": seed,
        "python": platform.python_version(),
        "fidelity_ok": not fidelity_problems,
        "fidelity_problems": fidelity_problems,
        **report,
        "batched": {
            "plan_window_ms": batched_cfg.plan_window_ms,
            "requests": batched_report["requests"],
            "executions": batched_report["executions"],
            "executions_per_request": (
                batched_report["executions_per_request"]
            ),
            "coalesced_requests": batched_report["coalesced_requests"],
            "planned_requests": batched_counters["planned"],
            "planned_batches": batched_counters["planned_batches"],
            "throughput_rps": batched_report["throughput_rps"],
            "latency_ms": batched_report["latency_ms"],
            "fidelity_ok": not batched_problems,
        },
        "latency_delta_ms": {
            q: round(
                batched_report["latency_ms"][q] - report["latency_ms"][q],
                3,
            )
            for q in ("p50", "p95", "p99")
        },
    }


def check_serve_record(record: dict) -> list[str]:
    """CI-gate findings for a serving record (empty = pass)."""
    problems = list(record.get("fidelity_problems", []))
    if record["errors"]:
        problems.append(f"{record['errors']} request(s) failed")
    if record["requests"] and record["executions"] >= record["requests"]:
        problems.append(
            f"no work sharing: {record['executions']} executions for "
            f"{record['requests']} requests"
        )
    if record["coalesced_requests"] <= 0:
        problems.append("no requests were coalesced under duplicate load")
    batched = record.get("batched")
    if batched is not None and not batched.get("fidelity_ok", True):
        problems.append("batched serving path failed rows/codes fidelity")
    return problems


def write_serve_trajectory(path: str, record: dict) -> None:
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")


def format_serve_summary(record: dict) -> list[dict]:
    """Display rows for :func:`repro.bench.harness.format_table`."""
    return [
        {
            "threads": record["threads"],
            "orders": len(record["orders"]),
            "requests": record["requests"],
            "executions": record["executions"],
            "exec/req": record["executions_per_request"],
            "coalesced": record["coalesced_requests"],
            "p50_ms": record["latency_ms"]["p50"],
            "p99_ms": record["latency_ms"]["p99"],
            "rps": record["throughput_rps"],
            "batched_p50_ms": record.get("batched", {})
            .get("latency_ms", {}).get("p50"),
            "d_p50_ms": record.get("latency_delta_ms", {}).get("p50"),
            "d_p95_ms": record.get("latency_delta_ms", {}).get("p95"),
            "fidelity_ok": record["fidelity_ok"],
        }
    ]
