"""Benchmark harness: experiment drivers for every figure/table of the
paper, shared by ``benchmarks/`` (pytest-benchmark) and ``examples/``.
"""

from .harness import (
    BenchResult,
    bench_scale,
    format_table,
    time_callable,
)
from .figures import (
    run_fig10_cell,
    run_fig10_experiment,
    run_fig11_cell,
    run_fig11_experiment,
)
from .trajectory import run_trajectory, write_trajectory

__all__ = [
    "run_trajectory",
    "write_trajectory",
    "BenchResult",
    "bench_scale",
    "format_table",
    "time_callable",
    "run_fig10_cell",
    "run_fig10_experiment",
    "run_fig11_cell",
    "run_fig11_experiment",
]
