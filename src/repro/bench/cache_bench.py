"""Order-cache benchmark trajectory: cold sort vs cached modify.

The order cache's acceptance bar is that answering a repeat
``order_by`` against rows whose *sibling* order is already cached —
by feeding the cached rows and codes through the paper's
order-modification machinery — beats sorting those rows from scratch,
on every Table 1 order pair, with bit-identical output.  This module
measures exactly that and emits a machine-readable record, committed
as ``BENCH_cache.json`` at the repo root.

Per Table 1 case ``(input order, output order)``:

* **cold_s** — ``Query.order_by(output)`` over the unordered rows with
  ``cache="off"``: the full tournament sort, best of ``repeats``.
* **modify_s** — the same request with ``cache="on"`` against a fresh
  cache primed (untimed) with the *input* order: the dispatcher prices
  the cached sibling, serves through ``modify_sort_order``, and
  installs the result.  Each repeat uses a freshly primed cache so the
  timed request is always the modify-from-cache path.
* **hit_s** — the request once more on the now-warm cache: the exact
  hit (rows and codes verbatim, counters replayed).

Fidelity per cell: the cached responses' rows *and* codes must equal
the cold sort's bit for bit.  ``min_speedup`` aggregates
``cold_s / modify_s`` over the cells actually served from the cache;
the CLI and benchmark drivers exit non-zero when any such cell is
slower than the cold sort or any fidelity check fails, gating CI.
"""

from __future__ import annotations

import json
import math
import platform
import time

from ..exec import ExecutionConfig
from ..model import Schema, SortSpec, Table
from ..query import Query
from ..workloads.generators import random_table

#: The Table 1 order pairs (input order -> output order).
TABLE1_CASES = {
    0: (("A", "B"), ("A",)),
    1: (("A",), ("A", "B")),
    2: (("A", "B"), ("B",)),
    3: (("A", "B"), ("B", "A")),
    4: (("A", "B", "C"), ("A", "C")),
    5: (("A", "B", "C"), ("A", "C", "B")),
    6: (("A", "B", "C", "D"), ("A", "C", "D")),
    7: (("A", "B", "C", "D"), ("A", "C", "B", "D")),
}

_SCHEMA = Schema.of("A", "B", "C", "D")
_DOMAINS = {"A": 32, "B": 64, "C": 256, "D": 8}

_OFF = ExecutionConfig(cache="off")
_ON = ExecutionConfig(cache="on")


def _run(table: Table, columns: tuple, config: ExecutionConfig):
    """Execute one order_by; returns (seconds, result, Sort operator)."""
    q = Query(table).order_by(*columns, config=config)
    start = time.perf_counter()
    out = q.to_table()
    return time.perf_counter() - start, out, q.op


def _cell(case: int, inp: tuple, out_cols: tuple, n_rows: int, seed: int,
          repeats: int) -> dict:
    from ..cache import configure_cache, reset_cache

    table = random_table(
        _SCHEMA, n_rows,
        domains=[_DOMAINS[c] for c in _SCHEMA.columns],
        seed=seed + case,
    )

    cold_s = math.inf
    for _ in range(repeats):
        s, cold, _op = _run(table, out_cols, _OFF)
        cold_s = min(cold_s, s)

    modify_s = math.inf
    strategy = None
    cached = None
    for _ in range(repeats):
        configure_cache()  # fresh, unlimited, no TTL
        _run(table, inp, _ON)  # prime with the input order (untimed)
        s, cached, op = _run(table, out_cols, _ON)
        modify_s = min(modify_s, s)
        strategy = op.order_strategy

    # Exact repeat on the warm cache from the last repeat.
    hit_s, hit, hit_op = _run(table, out_cols, _ON)
    reset_cache()

    fidelity_ok = (
        cached.rows == cold.rows and cached.ovcs == cold.ovcs
        and hit.rows == cold.rows and hit.ovcs == cold.ovcs
    )
    served = strategy is not None and strategy.startswith("modify-from-cache")
    return {
        "case": case,
        "from": ",".join(inp),
        "to": ",".join(out_cols),
        "cold_s": round(cold_s, 4),
        "modify_s": round(modify_s, 4),
        "hit_s": round(hit_s, 4),
        "speedup": round(cold_s / max(modify_s, 1e-9), 2),
        "hit_speedup": round(cold_s / max(hit_s, 1e-9), 2),
        "strategy": strategy,
        "hit_strategy": hit_op.order_strategy,
        "served_from_cache": served,
        "fidelity_ok": fidelity_ok,
    }


def run_cache_trajectory(
    n_rows: int, seed: int = 0, repeats: int = 3
) -> dict:
    """The full cold-vs-cached sweep; returns the JSON-ready record."""
    cells = [
        _cell(case, inp, out_cols, n_rows, seed, repeats)
        for case, (inp, out_cols) in TABLE1_CASES.items()
    ]
    served = [c["speedup"] for c in cells if c["served_from_cache"]]
    return {
        "n_rows": n_rows,
        "seed": seed,
        "repeats": repeats,
        "python": platform.python_version(),
        "fidelity_ok": all(c["fidelity_ok"] for c in cells),
        "cells_served": len(served),
        "min_speedup": min(served) if served else 0.0,
        "geomean_speedup": round(
            math.exp(sum(math.log(max(s, 1e-9)) for s in served)
                     / len(served)), 2
        ) if served else 0.0,
        "cells": cells,
    }


def check_cache_record(record: dict) -> list[str]:
    """CI-gate findings for a trajectory record (empty = pass)."""
    problems = []
    if not record["fidelity_ok"]:
        problems.append("cached output diverged from the cold sort")
    for cell in record["cells"]:
        if cell["served_from_cache"] and cell["speedup"] < 1.0:
            problems.append(
                f"case {cell['case']} ({cell['from']} -> {cell['to']}): "
                f"cached modify slower than cold sort "
                f"({cell['modify_s']}s vs {cell['cold_s']}s)"
            )
    return problems


def write_cache_trajectory(path: str, record: dict) -> None:
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")


def format_cache_cells(record: dict) -> list[dict]:
    """Display rows for :func:`repro.bench.harness.format_table`."""
    return [
        {k: v for k, v in cell.items()
         if k not in ("served_from_cache", "hit_strategy")}
        for cell in record["cells"]
    ]
