"""Reading and writing tables: CSV and JSON-lines.

Small but real I/O so the library is usable on actual data files:

* :func:`read_csv` / :func:`write_csv` — header row = schema; values
  are type-inferred (int -> float -> str) column-wise unless explicit
  ``types`` are given;
* :func:`read_jsonl` / :func:`write_jsonl` — one object per line;
* both readers accept a declared ``sort_spec`` and verify it while
  streaming (cheap, single pass), deriving offset-value codes on the
  fly so a loaded table is immediately usable by the engine.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import IO, Sequence

from .model import Schema, SortSpec, Table
from .ovc.derive import derive_ovcs


def _infer_column(values: list[str]):
    """Pick the narrowest type fitting every non-empty value."""

    def try_all(cast):
        out = []
        for v in values:
            if v == "":
                out.append(None)
                continue
            out.append(cast(v))
        return out

    for cast in (int, float):
        try:
            return try_all(cast)
        except ValueError:
            continue
    return [v if v != "" else None for v in values]


def read_csv(
    path: str | Path | IO[str],
    sort_spec: SortSpec | None = None,
    types: Sequence[type] | None = None,
    delimiter: str = ",",
) -> Table:
    """Load a CSV with a header row into a :class:`Table`.

    With ``sort_spec`` the rows are validated against it and codes are
    derived; loading unsorted data with a spec raises ``ValueError``.
    """
    close = False
    if isinstance(path, (str, Path)):
        handle: IO[str] = open(path, newline="")
        close = True
    else:
        handle = path
    try:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError("CSV file has no header row") from None
        raw_rows = [row for row in reader]
    finally:
        if close:
            handle.close()

    schema = Schema(tuple(h.strip() for h in header))
    width = len(schema)
    for i, row in enumerate(raw_rows):
        if len(row) != width:
            raise ValueError(
                f"row {i + 1} has {len(row)} fields, expected {width}"
            )

    if types is not None:
        if len(types) != width:
            raise ValueError("one type per column required")
        columns = [
            [types[c](row[c]) if row[c] != "" else None for row in raw_rows]
            for c in range(width)
        ]
    else:
        columns = [
            _infer_column([row[c] for row in raw_rows]) for c in range(width)
        ]
    rows = [tuple(col[i] for col in columns) for i in range(len(raw_rows))]
    table = Table(schema, rows, sort_spec)
    if sort_spec is not None:
        table.ovcs = derive_ovcs(
            rows, sort_spec.positions(schema), sort_spec.directions
        )
    return table


def write_csv(
    table: Table, path: str | Path | IO[str], delimiter: str = ","
) -> None:
    close = False
    if isinstance(path, (str, Path)):
        handle: IO[str] = open(path, "w", newline="")
        close = True
    else:
        handle = path
    try:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(table.schema.columns)
        for row in table.rows:
            writer.writerow(["" if v is None else v for v in row])
    finally:
        if close:
            handle.close()


def read_jsonl(
    path: str | Path | IO[str],
    schema: Schema | None = None,
    sort_spec: SortSpec | None = None,
) -> Table:
    """Load JSON-lines (one object per line) into a :class:`Table`.

    Without an explicit ``schema`` the first object's keys (in
    insertion order) define it; later objects may omit keys (None) but
    not add new ones.
    """
    close = False
    if isinstance(path, (str, Path)):
        handle: IO[str] = open(path)
        close = True
    else:
        handle = path
    try:
        rows: list[tuple] = []
        for line_nr, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if not isinstance(obj, dict):
                raise ValueError(f"line {line_nr}: expected an object")
            if schema is None:
                schema = Schema(tuple(obj.keys()))
            unknown = set(obj) - set(schema.columns)
            if unknown:
                raise ValueError(
                    f"line {line_nr}: unknown columns {sorted(unknown)}"
                )
            rows.append(tuple(obj.get(c) for c in schema.columns))
    finally:
        if close:
            handle.close()
    if schema is None:
        raise ValueError("empty JSONL input needs an explicit schema")
    table = Table(schema, rows, sort_spec)
    if sort_spec is not None:
        table.ovcs = derive_ovcs(
            rows, sort_spec.positions(schema), sort_spec.directions
        )
    return table


def write_jsonl(table: Table, path: str | Path | IO[str]) -> None:
    close = False
    if isinstance(path, (str, Path)):
        handle: IO[str] = open(path, "w")
        close = True
    else:
        handle = path
    try:
        for row in table.rows:
            handle.write(
                json.dumps(dict(zip(table.schema.columns, row))) + "\n"
            )
    finally:
        if close:
            handle.close()
