"""EXPLAIN ANALYZE: run a plan and annotate it with actual row counts.

:func:`explain_analyze` instruments every edge of an operator tree with
a counting probe, executes the plan to completion, and renders the tree
with per-operator output cardinalities plus the run's comparison
statistics — the first thing anyone asks of a query engine.

Probes are transparent: they forward ``(row, ovc)`` pairs, schema, and
ordering, so instrumented plans behave identically (aside from the
counting overhead).  Each probe reports *inclusive* time (wall time
while the operator's iterator was live, children included) and *self*
time (inclusive minus the children's inclusive time — pull-based
operators interleave with their children, so subtraction is the only
way to attribute cost to one node), plus the per-operator delta of the
plan's shared :class:`~repro.ovc.stats.ComparisonStats`.  When the
global tracer is enabled each probed operator also emits an
``op.<ClassName>`` span, so plan executions land in the same timeline
as the kernels they invoke.
"""

from __future__ import annotations

import time
from typing import Iterator

from .engine.operators import Operator
from .obs import TRACER
from .ovc.stats import ComparisonStats


class Probe(Operator):
    """Transparent counting wrapper around one operator.

    After execution:

    * :attr:`rows_out` — pairs forwarded downstream;
    * :attr:`seconds` — inclusive wall time (children included);
    * :meth:`self_seconds` — inclusive minus direct children's
      inclusive time;
    * :attr:`stats_delta` — this subtree's comparison-counter delta.
    """

    def __init__(self, inner: Operator) -> None:
        super().__init__(inner.schema, inner.ordering, inner.stats)
        self.inner = inner
        self.rows_out = 0
        self.seconds = 0.0
        self.stats_delta = ComparisonStats()

    def __iter__(self) -> Iterator[tuple[tuple, tuple | None]]:
        before = self.stats.snapshot()
        start = time.perf_counter()
        try:
            with TRACER.span("op." + type(self.inner).__name__):
                for pair in self.inner:
                    self.rows_out += 1
                    yield pair
        finally:
            # try/finally (not post-loop accumulation) so a partially
            # consumed or abandoned iterator still reports its time.
            self.seconds += time.perf_counter() - start
            self.stats_delta.merge(self.stats - before)

    def _child_probes(self) -> list["Probe"]:
        return [c for c in self.inner._children() if isinstance(c, Probe)]

    def self_seconds(self) -> float:
        """Inclusive time minus the direct children's inclusive time."""
        return max(
            0.0, self.seconds - sum(c.seconds for c in self._child_probes())
        )

    def self_stats(self) -> ComparisonStats:
        """This operator's own comparison work, children subtracted."""
        spent = self.stats_delta
        for child in self._child_probes():
            spent = spent - child.stats_delta
        return spent

    def _children(self) -> list[Operator]:
        return self.inner._children()

    def _explain_detail(self) -> str:
        return self.inner._explain_detail()


def instrument(op: Operator) -> Operator:
    """Recursively wrap an operator tree in probes.

    Children are discovered through each operator's own
    :meth:`~repro.engine.operators.Operator._children` — not a
    hard-coded attribute list — so operators that hold children in a
    list or tuple (e.g. an n-ary union) get probed too.  The attribute
    (or list/tuple slot) holding each child is rebound in place to the
    probed child, and the probed root is returned.
    """
    child_ids = {id(child) for child in op._children()}
    if child_ids:
        probed: dict[int, Operator] = {}

        def wrap(value: Operator) -> Operator:
            if id(value) not in probed:
                probed[id(value)] = instrument(value)
            return probed[id(value)]

        for name, value in list(vars(op).items()):
            if isinstance(value, Operator) and id(value) in child_ids:
                setattr(op, name, wrap(value))
            elif isinstance(value, (list, tuple)) and any(
                isinstance(v, Operator) and id(v) in child_ids for v in value
            ):
                rebound = [
                    wrap(v)
                    if isinstance(v, Operator) and id(v) in child_ids
                    else v
                    for v in value
                ]
                setattr(
                    op,
                    name,
                    tuple(rebound) if isinstance(value, tuple) else rebound,
                )
    return Probe(op)


def _fmt_stats(spent: ComparisonStats) -> str:
    parts = []
    if spent.column_comparisons:
        parts.append(f"cols={spent.column_comparisons:,}")
    if spent.ovc_comparisons:
        parts.append(f"codes={spent.ovc_comparisons:,}")
    if spent.row_comparisons:
        parts.append(f"rows={spent.row_comparisons:,}")
    return f"  [{' '.join(parts)}]" if parts else ""


def _render(node: Operator, indent: int, lines: list[str]) -> None:
    if isinstance(node, Probe):
        inner = node.inner
        label = (
            f"{'  ' * indent}{inner.__class__.__name__}"
            f"{inner._explain_detail()}"
            f"  -> {node.rows_out:,} rows in {node.seconds:.4f}s"
            f" (self {node.self_seconds():.4f}s)"
            f"{_fmt_stats(node.self_stats())}"
        )
        lines.append(label)
        for child in inner._children():
            _render(child, indent + 1, lines)
    else:
        lines.append(f"{'  ' * indent}{node.__class__.__name__}")
        for child in node._children():
            _render(child, indent + 1, lines)


def explain_analyze(op: Operator) -> tuple[list[tuple], str]:
    """Execute ``op`` and return ``(rows, annotated plan text)``.

    The operator's shared :class:`ComparisonStats` is snapshotted
    around the run, so the report shows only this execution's work.
    Each plan line carries inclusive and self time plus the operator's
    own comparison-counter delta.
    """
    stats: ComparisonStats = op.stats
    before = stats.snapshot()
    root = instrument(op)
    rows = [row for row, _ovc in root]
    spent = stats - before
    lines: list[str] = []
    _render(root, 0, lines)
    lines.append(
        f"-- {spent.row_comparisons:,} row comparisons, "
        f"{spent.ovc_comparisons:,} code comparisons, "
        f"{spent.column_comparisons:,} column comparisons"
    )
    return rows, "\n".join(lines)
