"""EXPLAIN ANALYZE: run a plan and annotate it with actual row counts.

:func:`explain_analyze` instruments every edge of an operator tree with
a counting probe, executes the plan to completion, and renders the tree
with per-operator output cardinalities plus the run's comparison
statistics — the first thing anyone asks of a query engine.

Probes are transparent: they forward ``(row, ovc)`` pairs, schema, and
ordering, so instrumented plans behave identically (aside from the
counting overhead).
"""

from __future__ import annotations

import time
from typing import Iterator

from .engine.operators import Operator
from .ovc.stats import ComparisonStats

#: Attributes under which our operators store their children.
_CHILD_ATTRS = ("_child", "_left", "_right")


class Probe(Operator):
    """Transparent counting wrapper around one operator."""

    def __init__(self, inner: Operator) -> None:
        super().__init__(inner.schema, inner.ordering, inner.stats)
        self.inner = inner
        self.rows_out = 0
        self.seconds = 0.0

    def __iter__(self) -> Iterator[tuple[tuple, tuple | None]]:
        start = time.perf_counter()
        for pair in self.inner:
            self.rows_out += 1
            yield pair
        self.seconds += time.perf_counter() - start

    def _children(self) -> list[Operator]:
        return self.inner._children()

    def _explain_detail(self) -> str:
        return self.inner._explain_detail()


def instrument(op: Operator) -> Operator:
    """Recursively wrap an operator tree in probes (in place for
    children, returning the probed root)."""
    for attr in _CHILD_ATTRS:
        child = getattr(op, attr, None)
        if isinstance(child, Operator):
            setattr(op, attr, instrument(child))
    return Probe(op)


def _render(node: Operator, indent: int, lines: list[str]) -> None:
    if isinstance(node, Probe):
        inner = node.inner
        label = (
            f"{'  ' * indent}{inner.__class__.__name__}"
            f"{inner._explain_detail()}"
            f"  -> {node.rows_out:,} rows in {node.seconds:.4f}s"
        )
        lines.append(label)
        for child in inner._children():
            _render(child, indent + 1, lines)
    else:
        lines.append(f"{'  ' * indent}{node.__class__.__name__}")
        for child in node._children():
            _render(child, indent + 1, lines)


def explain_analyze(op: Operator) -> tuple[list[tuple], str]:
    """Execute ``op`` and return ``(rows, annotated plan text)``.

    The operator's shared :class:`ComparisonStats` is snapshotted
    around the run, so the report shows only this execution's work.
    """
    stats: ComparisonStats = op.stats
    before = stats.snapshot()
    root = instrument(op)
    rows = [row for row, _ovc in root]
    spent = stats - before
    lines: list[str] = []
    _render(root, 0, lines)
    lines.append(
        f"-- {spent.row_comparisons:,} row comparisons, "
        f"{spent.ovc_comparisons:,} code comparisons, "
        f"{spent.column_comparisons:,} column comparisons"
    )
    return rows, "\n".join(lines)
