"""A TPC-H-flavored retail workload: customers, orders, lineitems.

Scaled-down analytics schema for end-to-end demonstrations of the
engine and optimizer.  The stored physical design follows the paper's
philosophy: ONE sorted copy per table, with related orders produced by
modification instead of extra indexes:

* ``customers``  sorted on (region, customer)
* ``orders``     sorted on (customer, order_id)   — FK-clustered
* ``lineitems``  sorted on (order_id, line_nr)

Queries needing orders by ``(order_id)`` (to join lineitems) or
lineitems by ``(partkey)`` re-sort through Table 1's cases rather than
maintaining second copies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..model import Schema, SortSpec, Table
from .generators import _attach_ovcs

REGIONS = 5


@dataclass
class RetailWorkload:
    customers: Table
    orders: Table
    lineitems: Table

    @property
    def tables(self) -> dict[str, Table]:
        return {
            "customers": self.customers,
            "orders": self.orders,
            "lineitems": self.lineitems,
        }


def make_retail_workload(
    n_customers: int = 300,
    n_orders: int = 2_000,
    max_lines_per_order: int = 4,
    n_parts: int = 200,
    seed: int = 0,
) -> RetailWorkload:
    """Build a seeded retail workload with FK integrity."""
    rng = random.Random(seed)

    customer_schema = Schema.of("region", "customer", "segment")
    customers = sorted(
        (rng.randrange(REGIONS), c, rng.randrange(5))
        for c in range(n_customers)
    )
    customers_table = _attach_ovcs(
        Table(customer_schema, customers, SortSpec.of("region", "customer"))
    )

    order_schema = Schema.of("customer", "order_id", "order_date", "priority")
    orders = sorted(
        (
            rng.randrange(n_customers),
            o,
            rng.randrange(2_400),  # day number
            rng.randrange(3),
        )
        for o in range(n_orders)
    )
    orders_table = _attach_ovcs(
        Table(order_schema, orders, SortSpec.of("customer", "order_id"))
    )

    line_schema = Schema.of("order_id", "line_nr", "partkey", "qty", "price")
    lineitems: list[tuple] = []
    for _cust, order_id, _date, _prio in orders:
        for line_nr in range(1 + rng.randrange(max_lines_per_order)):
            lineitems.append(
                (
                    order_id,
                    line_nr,
                    rng.randrange(n_parts),
                    1 + rng.randrange(20),
                    10 + rng.randrange(990),
                )
            )
    lineitems.sort()
    lineitems_table = _attach_ovcs(
        Table(line_schema, lineitems, SortSpec.of("order_id", "line_nr"))
    )
    return RetailWorkload(customers_table, orders_table, lineitems_table)
