"""Workload generators: the paper's experimental data sets and the
enrollment (students x courses) motivating scenario.
"""

from .generators import (
    fig10_table,
    fig11_table,
    random_sorted_table,
    random_table,
)
from .enrollment import EnrollmentWorkload, make_enrollment_workload
from .retail import RetailWorkload, make_retail_workload

__all__ = [
    "fig10_table",
    "fig11_table",
    "random_sorted_table",
    "random_table",
    "EnrollmentWorkload",
    "make_enrollment_workload",
    "RetailWorkload",
    "make_retail_workload",
]
