"""The paper's motivating scenario: enrollments of students in courses.

A many-to-many relationship whose single index, ordered on
``(course, student)``, should serve both class rosters (merge join with
courses) and student transcripts (merge join with students) — the
latter by modifying the scan's sort order to ``(student, course)``
(Table 1 case 3).  With multiple campuses the orders gain a shared
prefix (case 5), and with repeatable courses a ``semester`` suffix
(case 7).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..model import Schema, SortSpec, Table
from .generators import _attach_ovcs


@dataclass
class EnrollmentWorkload:
    """Three tables plus the single enrollment index of the scenario."""

    students: Table
    courses: Table
    #: The one stored copy: sorted on (campus, course, student, semester).
    enrollments: Table
    n_campuses: int

    @property
    def roster_order(self) -> SortSpec:
        """Scan order serving course rosters."""
        if self.n_campuses > 1:
            return SortSpec.of("campus", "course", "student", "semester")
        return SortSpec.of("course", "student", "semester")

    @property
    def transcript_order(self) -> SortSpec:
        """Desired order serving student transcripts."""
        if self.n_campuses > 1:
            return SortSpec.of("campus", "student", "course", "semester")
        return SortSpec.of("student", "course", "semester")


def make_enrollment_workload(
    n_students: int = 200,
    n_courses: int = 50,
    n_enrollments: int = 2000,
    n_campuses: int = 1,
    n_semesters: int = 4,
    repeat_fraction: float = 0.05,
    seed: int = 0,
) -> EnrollmentWorkload:
    """Build a seeded enrollment scenario.

    Students and courses are scoped per campus (their identifiers are
    meaningful only within a campus, as in the paper's multi-campus
    discussion).  A small fraction of enrollments repeats an existing
    (student, course) pair in a later semester.
    """
    rng = random.Random(seed)

    student_schema = Schema.of("campus", "student", "gpa_x100")
    students = sorted(
        (c, s, rng.randrange(0, 401))
        for c in range(n_campuses)
        for s in range(n_students)
    )
    students_table = _attach_ovcs(
        Table(student_schema, students, SortSpec.of("campus", "student"))
    )

    course_schema = Schema.of("campus", "course", "credits")
    courses = sorted(
        (c, k, rng.choice((2, 3, 4, 6)))
        for c in range(n_campuses)
        for k in range(n_courses)
    )
    courses_table = _attach_ovcs(
        Table(course_schema, courses, SortSpec.of("campus", "course"))
    )

    enroll_schema = Schema.of("campus", "course", "student", "semester", "grade_x10")
    seen: set[tuple] = set()
    enrollments: list[tuple] = []
    while len(enrollments) < n_enrollments:
        campus = rng.randrange(n_campuses)
        course = rng.randrange(n_courses)
        student = rng.randrange(n_students)
        semester = rng.randrange(n_semesters)
        key = (campus, course, student, semester)
        if key in seen:
            continue
        seen.add(key)
        enrollments.append(key + (rng.randrange(10, 41),))
        if rng.random() < repeat_fraction and semester + 1 < n_semesters:
            retry = (campus, course, student, semester + 1)
            if retry not in seen:
                seen.add(retry)
                enrollments.append(retry + (rng.randrange(10, 41),))
    enrollments.sort()
    enrollments_table = _attach_ovcs(
        Table(
            enroll_schema,
            enrollments,
            SortSpec.of("campus", "course", "student", "semester"),
        )
    )
    return EnrollmentWorkload(
        students_table, courses_table, enrollments_table, n_campuses
    )
