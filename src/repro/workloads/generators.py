"""Synthetic data generators mirroring the paper's experiments.

The paper's engine fixes rows at 32 8-byte integer columns; we size
schemas to the columns an experiment actually uses.  Inputs arrive
*with* offset-value codes, as they would from a b-tree or column-store
scan — deriving them here is generator work, not measured work.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..model import Schema, SortSpec, Table
from ..ovc.derive import derive_ovcs


def _attach_ovcs(table: Table) -> Table:
    positions = table.sort_spec.positions(table.schema)
    table.ovcs = derive_ovcs(table.rows, positions, table.sort_spec.directions)
    return table


def fig10_table(
    n_rows: int,
    list_len: int,
    decide: str = "first",
    n_runs: int = 512,
    domain: int | None = None,
    seed: int = 0,
) -> Table:
    """Figure 10 input: sorted on ``A,B``; desired order is ``B,A``.

    ``A`` and ``B`` are lists of ``list_len`` columns each.  All
    columns hold zeroes except the deciding one (first or last in each
    list): ``A``'s deciding column enumerates the ``n_runs``
    pre-existing runs, ``B``'s holds random values sorted within each
    run (not necessarily unique).

    ``domain`` defaults to the run size, making the deciding values
    *dense*: every run holds roughly the same value set, so the merge
    constantly meets equal values from different runs — the regime in
    which the paper's comparison counts (ties resolved beyond the
    deciding column) arise.
    """
    if decide not in ("first", "last"):
        raise ValueError("decide must be 'first' or 'last'")
    if n_runs < 1 or n_rows < n_runs:
        raise ValueError("need n_rows >= n_runs >= 1")
    if domain is None:
        domain = max(2, n_rows // n_runs)
    rng = random.Random(seed)
    pos = 0 if decide == "first" else list_len - 1

    schema = Schema(
        tuple(f"A{i}" for i in range(list_len))
        + tuple(f"B{i}" for i in range(list_len))
    )
    spec = SortSpec(schema.columns)

    rows: list[tuple] = []
    base, extra = divmod(n_rows, n_runs)
    a_cols = [0] * list_len
    for run in range(n_runs):
        run_size = base + (1 if run < extra else 0)
        a_cols[pos] = run
        a_tuple = tuple(a_cols)
        b_values = sorted(rng.randrange(domain) for _ in range(run_size))
        b_cols = [0] * list_len
        for v in b_values:
            b_cols[pos] = v
            rows.append(a_tuple + tuple(b_cols))
    table = Table(schema, rows, spec)
    return _attach_ovcs(table)


def fig10_output_spec(list_len: int) -> SortSpec:
    """The desired order of Figure 10: ``B`` before ``A``."""
    return SortSpec(
        tuple(f"B{i}" for i in range(list_len))
        + tuple(f"A{i}" for i in range(list_len))
    )


def fig11_table(
    n_rows: int,
    n_segments: int,
    list_len: int = 8,
    domain: int | None = None,
    seed: int = 0,
) -> Table:
    """Figure 11 input: sorted on ``A,B,C``; desired order ``A,C,B``.

    ``A``, ``B``, ``C`` are lists of ``list_len`` columns; the last
    column of each list decides comparisons.  Distinct ``A`` values
    define ``n_segments`` segments; within each segment the number of
    runs (distinct ``B``) is the square root of the segment size, so
    that quartering the segment size halves both the run count and the
    run size — the paper's scaling rule.
    """
    if n_segments < 1 or n_rows < n_segments:
        raise ValueError("need n_rows >= n_segments >= 1")
    if domain is None:
        # Dense run contents, as in Figure 10 (see fig10_table).
        seg_size = max(1, n_rows // n_segments)
        domain = max(2, round(seg_size ** 0.5))
    rng = random.Random(seed)
    pos = list_len - 1

    schema = Schema(
        tuple(f"A{i}" for i in range(list_len))
        + tuple(f"B{i}" for i in range(list_len))
        + tuple(f"C{i}" for i in range(list_len))
    )
    spec = SortSpec(schema.columns)

    rows: list[tuple] = []
    seg_base, seg_extra = divmod(n_rows, n_segments)
    zero = [0] * list_len
    for seg in range(n_segments):
        seg_size = seg_base + (1 if seg < seg_extra else 0)
        a_cols = list(zero)
        a_cols[pos] = seg
        a_tuple = tuple(a_cols)
        n_runs = max(1, round(seg_size ** 0.5))
        run_base, run_extra = divmod(seg_size, n_runs)
        for run in range(n_runs):
            run_size = run_base + (1 if run < run_extra else 0)
            if run_size == 0:
                continue
            b_cols = list(zero)
            b_cols[pos] = run
            b_tuple = tuple(b_cols)
            c_values = sorted(rng.randrange(domain) for _ in range(run_size))
            c_cols = list(zero)
            for v in c_values:
                c_cols[pos] = v
                rows.append(a_tuple + b_tuple + tuple(c_cols))
    table = Table(schema, rows, spec)
    return _attach_ovcs(table)


def fig11_output_spec(list_len: int = 8) -> SortSpec:
    """The desired order of Figure 11: ``A,C,B``."""
    return SortSpec(
        tuple(f"A{i}" for i in range(list_len))
        + tuple(f"C{i}" for i in range(list_len))
        + tuple(f"B{i}" for i in range(list_len))
    )


def random_table(
    schema: Schema,
    n_rows: int,
    domains: Sequence[int] | int = 100,
    seed: int = 0,
) -> Table:
    """Uniform random rows, unsorted, without codes."""
    rng = random.Random(seed)
    if isinstance(domains, int):
        domains = [domains] * len(schema)
    if len(domains) != len(schema):
        raise ValueError("one domain per column required")
    rows = [
        tuple(rng.randrange(d) for d in domains) for _ in range(n_rows)
    ]
    return Table(schema, rows, None, None)


def random_sorted_table(
    schema: Schema,
    sort_spec: SortSpec,
    n_rows: int,
    domains: Sequence[int] | int = 100,
    seed: int = 0,
) -> Table:
    """Uniform random rows sorted on ``sort_spec``, with codes attached.

    Small domains produce many duplicates, segments, and runs — the
    interesting regime for order modification.
    """
    table = random_table(schema, n_rows, domains, seed)
    table.rows.sort(key=sort_spec.key_for(schema))
    table.sort_spec = sort_spec
    return _attach_ovcs(table)
