"""Disk spill for governed queries: real files, not simulated pages.

The storage layer's :class:`~repro.storage.pages.PageManager` *accounts
for* hypothetical I/O while keeping everything in memory — the right
tool for the paper's comparison-economy experiments, and useless for an
actual memory budget.  :class:`SpillManager` is the real thing: a
sorted run handed to :meth:`SpillManager.spill` is pickled to a file in
the spill directory and its in-memory lists are released; reading the
handle back restores it.  Spilled data is immutable, written once and
read once, so plain pickle files (no paging, no random access) are the
whole story.

Every spill and read is visible: spans ``exec.spill`` /
``exec.spill.read`` and counters ``exec.spill.runs`` /
``exec.spill.bytes_written`` / ``exec.spill.bytes_read``.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
import uuid

from ..obs import LOG, METRICS, TRACER


class SpillHandle:
    """One spilled run: a file plus enough metadata to restore it."""

    __slots__ = ("path", "n_rows", "n_bytes", "category", "_manager")

    def __init__(
        self, manager: "SpillManager", path: str, n_rows: int,
        n_bytes: int, category: str,
    ) -> None:
        self._manager = manager
        self.path = path
        self.n_rows = n_rows
        self.n_bytes = n_bytes
        self.category = category

    def read(self) -> tuple[list[tuple], list[tuple] | None]:
        """Load the run back; the file stays until :meth:`release`."""
        with TRACER.span(
            "exec.spill.read", rows=self.n_rows, bytes=self.n_bytes
        ):
            with open(self.path, "rb") as fh:
                rows, ovcs = pickle.load(fh)
        if METRICS.enabled:
            METRICS.counter("exec.spill.bytes_read").inc(self.n_bytes)
        return rows, ovcs

    def release(self) -> None:
        """Delete the backing file (idempotent)."""
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass


class SpillManager:
    """Owns one query's spill directory and its spill/restore traffic.

    ``spill_dir`` is the *parent* directory (system temp dir when
    ``None``); each manager creates a private ``repro-spill-*``
    subdirectory so concurrent queries never collide, and
    :meth:`cleanup` (or context-manager exit) removes it wholesale.
    """

    def __init__(self, spill_dir: str | None = None) -> None:
        self._parent = spill_dir
        self._dir: str | None = None
        self.spilled_runs = 0
        self.spilled_bytes = 0

    @property
    def directory(self) -> str:
        """The private spill directory, created on first use."""
        if self._dir is None:
            parent = self._parent or tempfile.gettempdir()
            os.makedirs(parent, exist_ok=True)
            self._dir = tempfile.mkdtemp(prefix="repro-spill-", dir=parent)
        return self._dir

    def spill(
        self,
        rows: list[tuple],
        ovcs: list[tuple] | None,
        category: str = "run",
    ) -> SpillHandle:
        """Write one sorted run out; returns the handle to restore it."""
        path = os.path.join(self.directory, f"{category}-{uuid.uuid4().hex}.pkl")
        with TRACER.span("exec.spill", rows=len(rows), category=category):
            with open(path, "wb") as fh:
                pickle.dump((rows, ovcs), fh, protocol=pickle.HIGHEST_PROTOCOL)
            n_bytes = os.path.getsize(path)
        self.spilled_runs += 1
        self.spilled_bytes += n_bytes
        if METRICS.enabled:
            METRICS.counter("exec.spill.runs").inc()
            METRICS.counter("exec.spill.bytes_written").inc(n_bytes)
        if LOG.enabled:
            LOG.event(
                "exec.spill",
                rows=len(rows),
                bytes=n_bytes,
                category=category,
            )
        return SpillHandle(self, path, len(rows), n_bytes, category)

    def cleanup(self) -> None:
        """Remove the spill directory and everything in it (idempotent)."""
        if self._dir is not None:
            shutil.rmtree(self._dir, ignore_errors=True)
            self._dir = None

    def __enter__(self) -> "SpillManager":
        return self

    def __exit__(self, *exc: object) -> None:
        self.cleanup()
