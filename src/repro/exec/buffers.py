"""Budget-governed output buffering: absorb, spill, restore.

The order-modification executors produce their output segment by
segment, in final order — there is never a merge *across* segment
outputs.  That makes governed buffering trivial to keep bit-identical:
:class:`GovernedSink` absorbs each completed batch, charges it to the
memory accountant, and when the budget is exceeded spills everything
it holds to disk as one run; at the end, :meth:`GovernedSink.
materialize` concatenates the spilled runs (in spill order) with the
in-memory tail.  No row is ever reordered, dropped, or compared — a
governed run returns exactly the rows, codes, and comparison counts of
an ungoverned one, only its intermediate footprint differs.
"""

from __future__ import annotations

from ..obs import TRACER
from .memory import MemoryAccountant, rows_nbytes
from .spill import SpillHandle, SpillManager


class GovernedSink:
    """An append-only output buffer that spills when over budget.

    ``category`` labels the accountant charges (e.g.
    ``"modify.output"``); ``chunk_rows`` bounds how many rows a single
    :meth:`absorb_iter` charge covers, so even one huge batch triggers
    spills *during* absorption rather than after it.
    """

    def __init__(
        self,
        accountant: MemoryAccountant,
        spill: SpillManager,
        category: str = "modify.output",
        chunk_rows: int = 4096,
    ) -> None:
        self._accountant = accountant
        self._spill = spill
        self._category = category
        self._chunk_rows = max(1, chunk_rows)
        self._rows: list[tuple] = []
        self._ovcs: list[tuple] | None = None
        self._held_bytes = 0
        self._handles: list[SpillHandle] = []
        self._spilled_rows = 0

    # ---------------------------------------------------------- absorb

    def absorb(self, rows: list[tuple], ovcs: list[tuple] | None) -> None:
        """Take ownership of one completed output batch."""
        if ovcs is not None and self._ovcs is None:
            # Remember that codes were requested even for an empty
            # batch, so an empty input materializes [] rather than None
            # — exactly what the ungoverned paths return.
            self._ovcs = []
        if not rows and not self._rows:
            return
        if ovcs is not None:
            self._ovcs.extend(ovcs)
        self._rows.extend(rows)
        n = rows_nbytes(rows, ovcs)
        self._held_bytes += n
        self._accountant.charge(self._category, n)
        if self._accountant.over_budget():
            self._spill_held()

    def absorb_iter(self, rows: list[tuple], ovcs: list[tuple] | None) -> None:
        """Absorb a large batch in ``chunk_rows`` slices.

        Whole-input strategies (full sort, single-segment merges)
        produce their output as one list; slicing it through the sink
        lets the budget interrupt mid-batch exactly as it would have
        interrupted between segments.
        """
        if ovcs is not None and self._ovcs is None:
            self._ovcs = []
        step = self._chunk_rows
        for lo in range(0, len(rows), step):
            self.absorb(
                rows[lo : lo + step],
                ovcs[lo : lo + step] if ovcs is not None else None,
            )

    def _spill_held(self) -> None:
        if not self._rows:
            return
        self._accountant.note_spill()
        handle = self._spill.spill(self._rows, self._ovcs, self._category)
        self._handles.append(handle)
        self._spilled_rows += len(self._rows)
        self._rows = []
        self._ovcs = [] if self._ovcs is not None else None
        self._accountant.release(self._category, self._held_bytes)
        self._held_bytes = 0

    # ----------------------------------------------------- materialize

    @property
    def spill_count(self) -> int:
        """Spill operations this sink performed."""
        return len(self._handles)

    def materialize(self) -> tuple[list[tuple], list[tuple] | None]:
        """All absorbed output, in absorption order.

        Reads spilled runs back in spill order and appends the
        in-memory tail; releases every spill file.  The result is the
        caller's to keep — charges for the tail are released here, so
        the accountant ends the query back at its pre-sink level.
        """
        if not self._handles:
            rows, ovcs = self._rows, self._ovcs
            self._accountant.release(self._category, self._held_bytes)
            self._held_bytes = 0
            self._rows, self._ovcs = [], None
            return rows, ovcs
        with TRACER.span(
            "exec.sink.materialize",
            spilled_runs=len(self._handles),
            spilled_rows=self._spilled_rows,
        ):
            out_rows: list[tuple] = []
            out_ovcs: list[tuple] | None = None
            for handle in self._handles:
                rows, ovcs = handle.read()
                out_rows.extend(rows)
                if ovcs is not None:
                    if out_ovcs is None:
                        out_ovcs = []
                    out_ovcs.extend(ovcs)
                handle.release()
            out_rows.extend(self._rows)
            if self._ovcs is not None:
                if out_ovcs is None:
                    out_ovcs = []
                out_ovcs.extend(self._ovcs)
        self._accountant.release(self._category, self._held_bytes)
        self._held_bytes = 0
        self._handles = []
        self._rows, self._ovcs = [], None
        return out_rows, out_ovcs
