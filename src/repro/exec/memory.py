"""Per-query memory accounting: the budget behind spill decisions.

A :class:`MemoryAccountant` is charged, in bytes, by everything that
buffers rows during a governed query — run generation, merge output
buffers, the fast path's packed-code arrays, the parallel collector's
reorder buffer — and answers one question for all of them:
:meth:`MemoryAccountant.over_budget`.  Charging is bookkeeping only;
the *reaction* (spilling buffered runs, shrinking merge fan-in) lives
with whoever owns the memory, which keeps the accountant loss-free:
it never drops data, so governed runs stay bit-identical to
ungoverned ones.

The accountant reaches the executors the same way the tracer and the
metrics registry do — through a process-level current instance
(:func:`activate` / :func:`current`) — so deep call chains
(``merge_preexisting_runs``, the external sort's run generation) charge
without a parameter threaded through every signature.  Hot call sites
gate on ``current() is not None``; ungoverned runs pay one module
lookup and one ``is None`` check.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from ..obs import LOG, METRICS

#: The process's active accountant (``None`` outside governed queries).
_CURRENT: "MemoryAccountant | None" = None


def current() -> "MemoryAccountant | None":
    """The accountant governing the current query, if any."""
    return _CURRENT


@contextmanager
def activate(accountant: "MemoryAccountant | None") -> Iterator[None]:
    """Install ``accountant`` as the process's current one for a scope.

    Nested activations restore the outer accountant on exit; activating
    ``None`` is a no-op scope (so callers need no conditional).
    """
    global _CURRENT
    previous = _CURRENT
    if accountant is not None:
        _CURRENT = accountant
    try:
        yield
    finally:
        _CURRENT = previous


class MemoryAccountant:
    """Byte-granular budget ledger with per-category attribution.

    ``budget`` is the per-query byte budget (``None`` = unlimited:
    charges are tracked but :meth:`over_budget` never fires).
    Categories are free-form dotted names (``"modify.output"``,
    ``"extsort.runs"``, ``"fastpath.packed"``, ``"pool.reorder"``);
    they exist for attribution in metrics and tests, not for separate
    sub-budgets.
    """

    __slots__ = (
        "budget", "used", "peak", "by_category", "spill_count", "_over",
    )

    def __init__(self, budget: int | None) -> None:
        if budget is not None and budget <= 0:
            raise ValueError(f"budget must be positive, got {budget}")
        self.budget = budget
        self.used = 0
        self.peak = 0
        self.by_category: dict[str, int] = {}
        #: Spills triggered under this accountant (bumped by the owners
        #: of spilled memory, e.g. :class:`repro.exec.buffers.GovernedSink`).
        self.spill_count = 0
        #: Whether the last charge/release left us over budget — tracked
        #: so pressure *transitions* (not every over-budget charge) are
        #: observable.
        self._over = False

    # ---------------------------------------------------------- charging

    def charge(self, category: str, n_bytes: int) -> None:
        """Record ``n_bytes`` of live memory attributed to ``category``."""
        if n_bytes <= 0:
            return
        self.used += n_bytes
        self.by_category[category] = self.by_category.get(category, 0) + n_bytes
        if self.used > self.peak:
            self.peak = self.used
            if METRICS.enabled:
                METRICS.gauge("exec.mem.peak_bytes").set(self.peak)
        if METRICS.enabled:
            METRICS.counter("exec.mem.charged_bytes").inc(n_bytes)
            METRICS.gauge("exec.mem.used_bytes").set(self.used)
        if not self._over and self.over_budget():
            self._over = True
            if METRICS.enabled:
                METRICS.counter("exec.mem.pressure_events").inc()
            if LOG.enabled:
                LOG.event(
                    "exec.mem.pressure",
                    used_bytes=self.used,
                    budget_bytes=self.budget,
                    category=category,
                )

    def release(self, category: str, n_bytes: int) -> None:
        """Return ``n_bytes`` previously charged to ``category``."""
        if n_bytes <= 0:
            return
        self.used = max(0, self.used - n_bytes)
        held = self.by_category.get(category, 0)
        self.by_category[category] = max(0, held - n_bytes)
        if self._over and not self.over_budget():
            self._over = False
        if METRICS.enabled:
            METRICS.gauge("exec.mem.used_bytes").set(self.used)

    # ---------------------------------------------------------- verdicts

    def over_budget(self) -> bool:
        """True when live charges exceed the budget."""
        return self.budget is not None and self.used > self.budget

    def headroom(self) -> int | None:
        """Bytes left before the budget (``None`` when unlimited)."""
        if self.budget is None:
            return None
        return max(0, self.budget - self.used)

    def note_spill(self) -> None:
        """Record that a spill was triggered under this budget."""
        self.spill_count += 1
        if METRICS.enabled:
            METRICS.counter("exec.mem.spills").inc()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cap = "unlimited" if self.budget is None else f"{self.budget:,}B"
        return (
            f"MemoryAccountant(used={self.used:,}B, peak={self.peak:,}B, "
            f"budget={cap}, spills={self.spill_count})"
        )


def rows_nbytes(rows, ovcs=None) -> int:
    """Accounting size of a row batch (plus optional codes).

    Uses the same per-row size model as the simulated page manager
    (:func:`repro.storage.pages.row_size_bytes`) so spill accounting and
    budget accounting agree; each offset-value code is charged 16 bytes
    (two machine words).
    """
    from ..storage.pages import row_size_bytes

    total = sum(row_size_bytes(r) for r in rows)
    if ovcs is not None:
        total += 16 * len(ovcs)
    return total
