"""repro.exec — resource-governed execution.

The governance layer added in PR 4: one
:class:`~repro.exec.config.ExecutionConfig` carries every execution
knob (engine, workers, merge fan-in cap, memory budget, spill
directory, retry/timeout policy, observability requests) through
``modify_sort_order``, ``modify_sort_order_external``, ``Sort``,
``StreamingModify``, ``Query.order_by``, and the CLI.

* :mod:`repro.exec.config` — ``ExecutionConfig`` / ``RetryPolicy`` /
  ``parse_memory``.
* :mod:`repro.exec.compat` — the single rejection point for the
  removed ``engine=``/``workers=``/``max_fan_in=`` kwargs (one clear
  ``TypeError`` naming the ``ExecutionConfig`` replacement).
* :mod:`repro.exec.memory` — ``MemoryAccountant``, the per-query byte
  ledger every buffering site charges.
* :mod:`repro.exec.spill` — real spill-to-disk of buffered runs.
* :mod:`repro.exec.buffers` — ``GovernedSink``, the budget-governed
  output buffer (spills when over budget, restores bit-identically).
* :mod:`repro.exec.faults` — deterministic kill/hang/corrupt/error
  injection for the fault-tolerant worker pool.
"""

from .compat import resolve_config
from .config import ExecutionConfig, RetryPolicy, parse_memory
from .faults import Fault, parse_faults
from .memory import MemoryAccountant
from .spill import SpillManager

__all__ = [
    "ExecutionConfig",
    "RetryPolicy",
    "parse_memory",
    "resolve_config",
    "MemoryAccountant",
    "SpillManager",
    "Fault",
    "parse_faults",
]
