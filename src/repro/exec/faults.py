"""Deterministic fault injection for the parallel worker pool.

Fault-tolerance code that can only be exercised by real crashes is
untestable; this module lets tests (and the CI fault matrix) kill,
hang, or corrupt a worker *on demand, deterministically*.  A
:class:`Fault` names a kind, the shard it fires on, and how many
attempts it fires for; the active plan ships to workers inside the
picklable :class:`~repro.parallel.worker.ShardContext`, and the worker
consults :func:`fire` right around shard execution.  Because the
attempt number comes from the driver (it counts retries), "fail the
first attempt, succeed on retry" is expressible and exactly
reproducible under both ``fork`` and ``spawn``.

Kinds
-----
* ``"kill"`` — the worker process exits immediately (``os._exit``), as
  an OOM-killed or segfaulted worker would.
* ``"hang"`` — the worker sleeps for ``hang_s`` seconds, as a
  deadlocked or livelocked worker would; only a pool timeout recovers.
* ``"corrupt"`` — the worker completes but ships a truncated result
  (its last row dropped), modeling silent data corruption; the pool's
  row-count validation must catch it.
* ``"error"`` — the worker raises, exercising the ordinary remote
  traceback path.

Plans can also come from the environment (``REPRO_FAULTS``), so CLI
runs are injectable without code: a comma-separated list of
``kind@shard[xtimes]`` items, e.g. ``kill@0x1,hang@2``.  ``shard``
``*`` means every shard; omitted ``times`` means every attempt.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

_KINDS = ("kill", "hang", "corrupt", "error")


@dataclass(frozen=True)
class Fault:
    """One injected fault: fire ``kind`` on ``shard`` for ``times`` attempts.

    ``shard=None`` matches every shard; ``times=None`` fires on every
    attempt (so even retries fail, forcing quarantine).  ``hang_s`` is
    how long a ``"hang"`` sleeps — far longer than any sane shard
    timeout by default.
    """

    kind: str
    shard: int | None = None
    times: int | None = 1
    hang_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {sorted(_KINDS)}"
            )
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or None, got {self.times}")

    def matches(self, shard: int, attempt: int) -> bool:
        """Does this fault fire for ``shard`` on 0-based ``attempt``?"""
        if self.shard is not None and self.shard != shard:
            return False
        return self.times is None or attempt < self.times


class WorkerCorrupted(RuntimeError):
    """Raised by an ``"error"`` fault inside the worker."""


def parse_faults(spec: str) -> tuple[Fault, ...]:
    """Parse a ``REPRO_FAULTS`` spec: ``kind@shard[xtimes],...``.

    Examples: ``kill@0x1`` (kill shard 0's first attempt only — the
    retry succeeds), ``hang@2`` (hang shard 2 on every attempt —
    forces quarantine), ``corrupt@*x1`` (corrupt every shard's first
    attempt).  ``shard`` is an index or ``*``; omitted ``times`` means
    every attempt.
    """
    faults = []
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        kind, _, rest = item.partition("@")
        if not rest:
            raise ValueError(
                f"fault {item!r} needs a shard: kind@shard[xtimes]"
            )
        shard_text, _, times_text = rest.partition("x")
        shard = None if shard_text == "*" else int(shard_text)
        times = int(times_text) if times_text else None
        faults.append(Fault(kind, shard=shard, times=times))
    return tuple(faults)


def from_env(env: dict | None = None) -> tuple[Fault, ...]:
    """The fault plan in ``REPRO_FAULTS``, or an empty plan."""
    e = os.environ if env is None else env
    spec = e.get("REPRO_FAULTS", "")
    return parse_faults(spec) if spec else ()


def fire(
    faults: tuple[Fault, ...], shard: int, attempt: int
) -> Fault | None:
    """Trigger the first matching *pre-execution* fault, if any.

    ``kill`` and ``hang`` and ``error`` take effect here (never
    returning normally, sleeping, or raising); a matching ``corrupt``
    is returned to the caller, which must apply it to its finished
    output.
    """
    for fault in faults:
        if not fault.matches(shard, attempt):
            continue
        if fault.kind == "kill":
            # Let the queue feeder thread flush the worker's pending
            # "start" announcement first, so the driver can attribute
            # the death to the right shard instead of reconciling a
            # silent disappearance.
            time.sleep(0.05)
            os._exit(17)
        if fault.kind == "hang":
            time.sleep(fault.hang_s)
            return None
        if fault.kind == "error":
            raise WorkerCorrupted(
                f"injected error on shard {shard} attempt {attempt}"
            )
        if fault.kind == "corrupt":
            return fault
    return None


def corrupt_output(
    rows: list[tuple], ovcs: list[tuple]
) -> tuple[list[tuple], list[tuple]]:
    """Apply a ``corrupt`` fault: drop the final row of the output.

    Deterministic and silent — the shard looks successful until the
    pool validates its row count against the dispatched payload.
    """
    return rows[:-1], ovcs[:-1] if ovcs else ovcs
