"""Legacy-kwarg folding: the one place ``engine=``/``workers=`` live on.

PRs 1-3 grew ``engine=``, ``workers=``, and ``max_fan_in=`` kwargs on
every entry point; PR 4 replaces them with one
:class:`~repro.exec.config.ExecutionConfig`.  The old kwargs still work
for one release — each use emits a :class:`DeprecationWarning` and is
folded into the config *here*, so no call site carries its own folding
logic and removing the kwargs next release is a one-file change.
"""

from __future__ import annotations

import warnings

from .config import ExecutionConfig

#: Sentinel distinguishing "kwarg not passed" from an explicit ``None``
#: (both legacy ``workers=None`` and ``engine=None`` must keep working).
_UNSET = object()


def deprecated_kwarg(name: str, replacement: str, stacklevel: int = 4) -> None:
    """Emit the one deprecation message format for a legacy kwarg."""
    warnings.warn(
        f"the {name}= keyword is deprecated; pass "
        f"ExecutionConfig({replacement}) via config= instead "
        "(the kwarg will be removed in the next release)",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def resolve_config(
    config: ExecutionConfig | None,
    *,
    engine: object = _UNSET,
    workers: object = _UNSET,
    max_fan_in: object = _UNSET,
    stacklevel: int = 4,
) -> ExecutionConfig:
    """Coalesce a ``config=`` argument and legacy kwargs into one config.

    With no config and no legacy kwargs, returns the environment-aware
    default (:meth:`ExecutionConfig.from_env`), so ``REPRO_*`` variables
    govern bare calls.  Legacy kwargs are folded over that base with a
    :class:`DeprecationWarning` each.  Passing both a config *and* a
    legacy kwarg is ambiguous and raises ``TypeError``.

    The sentinel default distinguishes "not passed" from an explicit
    ``None``/``"auto"``: ``engine=None`` and ``engine="auto"`` both mean
    the default engine, and ``workers=None`` means serial — all legal
    legacy spellings that must keep working (with the warning) until
    the kwargs are removed.
    """
    overrides: dict = {}
    if engine is not _UNSET and engine is not None:
        deprecated_kwarg("engine", f"engine={engine!r}", stacklevel)
        overrides["engine"] = engine
    if workers is not _UNSET and workers is not None:
        deprecated_kwarg("workers", f"workers={workers!r}", stacklevel)
        overrides["workers"] = workers
    if max_fan_in is not _UNSET and max_fan_in is not None:
        deprecated_kwarg("max_fan_in", f"max_fan_in={max_fan_in}", stacklevel)
        overrides["max_fan_in"] = max_fan_in

    if config is not None:
        if overrides:
            raise TypeError(
                "pass either config= or the deprecated "
                f"{'/'.join(sorted(overrides))} kwargs, not both"
            )
        return config
    base = ExecutionConfig.from_env()
    return base.with_(**overrides) if overrides else base
