"""Legacy-kwarg rejection: the removed ``engine=``/``workers=`` kwargs.

PRs 1-3 grew ``engine=``, ``workers=``, and ``max_fan_in=`` kwargs on
every entry point; PR 4 replaced them with one
:class:`~repro.exec.config.ExecutionConfig` and kept the old spellings
alive for one release behind a :class:`DeprecationWarning`.  That
release has shipped: the kwargs are now **removed**.  Entry points
absorb them via ``**legacy`` and route here, so a stale call site gets
one clear :class:`TypeError` naming the replacement instead of a bare
"unexpected keyword argument" — and the error message lives in exactly
one place.
"""

from __future__ import annotations

from .config import ExecutionConfig

#: Removed kwarg -> the ExecutionConfig spelling the error points at.
_REMOVED = {
    "engine": 'ExecutionConfig(engine="fast")',
    "workers": "ExecutionConfig(workers=4)",
    "max_fan_in": "ExecutionConfig(max_fan_in=8)",
}


def reject_legacy_kwargs(where: str, kwargs: dict) -> None:
    """Raise the one removal message for any legacy kwarg in ``kwargs``.

    Unknown keywords raise the standard "unexpected keyword argument"
    ``TypeError``, so entry points that absorb ``**kwargs`` to produce
    the removal message stay honest about genuine typos.
    """
    for name in kwargs:
        if name in _REMOVED:
            raise TypeError(
                f"{where}() no longer accepts the {name}= keyword "
                f"(deprecated in the previous release, now removed); "
                f"pass config={_REMOVED[name]} instead"
            )
    if kwargs:
        name = next(iter(kwargs))
        raise TypeError(
            f"{where}() got an unexpected keyword argument {name!r}"
        )


def resolve_config(
    config: ExecutionConfig | None,
    where: str = "this entry point",
    **legacy: object,
) -> ExecutionConfig:
    """Resolve a ``config=`` argument to a concrete config.

    With no config, returns the environment-aware default
    (:meth:`ExecutionConfig.from_env`), so ``REPRO_*`` variables govern
    bare calls.  Any surviving legacy kwarg (``engine=``, ``workers=``,
    ``max_fan_in=``) raises a ``TypeError`` pointing at its
    :class:`ExecutionConfig` replacement.
    """
    if legacy:
        reject_legacy_kwargs(where, legacy)
    return config if config is not None else ExecutionConfig.from_env()
