"""Unified execution configuration: one object instead of kwarg sprawl.

PRs 1-3 each added their own knob to every entry point — ``engine=``
(fast path), ``workers=`` (parallel pool), ``max_fan_in=`` (graceful
merge degradation) — and PR 4 adds a memory budget, a spill directory,
and a retry/timeout policy.  Threading six loose kwargs through
``modify_sort_order``, ``modify_sort_order_external``, ``Sort``,
``StreamingModify``, ``Query.order_by``, and the CLI does not scale;
:class:`ExecutionConfig` carries all of them as one frozen value.

Construction patterns::

    cfg = ExecutionConfig.default()                  # env-aware defaults
    cfg = ExecutionConfig(workers=4, engine="fast")
    cfg = ExecutionConfig.from_env()                 # REPRO_* variables
    low = cfg.with_(memory_budget="1MiB")            # derived variant

The legacy kwargs still work for one release; they are folded into a
config (with a ``DeprecationWarning``) in exactly one place,
:func:`repro.exec.compat.resolve_config`.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass

_ENGINES = ("auto", "fast", "reference")

_DATA_PLANES = ("auto", "shm", "pickle")

_CACHE_MODES = ("off", "on", "auto")

#: Multipliers for the memory-size suffixes :func:`parse_memory` accepts.
_UNITS = {
    "b": 1,
    "k": 1024, "kb": 1000, "kib": 1024,
    "m": 1024 ** 2, "mb": 1000 ** 2, "mib": 1024 ** 2,
    "g": 1024 ** 3, "gb": 1000 ** 3, "gib": 1024 ** 3,
}


def parse_memory(value: int | str | None) -> int | None:
    """Parse a memory size: an int (bytes) or a string like ``"1MiB"``.

    Accepted suffixes: ``B``, ``K``/``KB``/``KiB``, ``M``/``MB``/``MiB``,
    ``G``/``GB``/``GiB`` (case-insensitive; the binary forms and the
    bare letters are powers of 1024, the decimal ``*B`` forms powers of
    1000).  ``None`` and ``""`` mean "no budget".
    """
    if value is None:
        return None
    if isinstance(value, bool):
        raise ValueError(f"memory size must be an int or string, got {value!r}")
    if isinstance(value, int):
        if value <= 0:
            raise ValueError(f"memory size must be positive, got {value}")
        return value
    text = value.strip().lower().replace("_", "").replace(",", "")
    if not text:
        return None
    digits = text
    unit = "b"
    for i, ch in enumerate(text):
        if not (ch.isdigit() or ch == "."):
            digits, unit = text[:i], text[i:].strip()
            break
    if unit not in _UNITS:
        raise ValueError(
            f"unknown memory unit {unit!r} in {value!r}; "
            f"use one of {sorted(set(_UNITS))}"
        )
    try:
        number = float(digits)
    except ValueError:
        raise ValueError(f"cannot parse memory size {value!r}") from None
    n = int(number * _UNITS[unit])
    if n <= 0:
        raise ValueError(f"memory size must be positive, got {value!r}")
    return n


@dataclass(frozen=True)
class RetryPolicy:
    """Fault-tolerance policy for the parallel worker pool.

    ``timeout_s`` is the per-shard wall-clock deadline (``None`` means
    no deadline: only worker death triggers recovery).  ``retries`` is
    how many times a failed shard is re-dispatched to the pool before it
    is quarantined and executed serially in the driver process.
    """

    timeout_s: float | None = None
    retries: int = 1

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.retries < 0:
            raise ValueError(f"retries must be non-negative, got {self.retries}")


@dataclass(frozen=True)
class ExecutionConfig:
    """Every execution knob of the engine, as one frozen value.

    Fields
    ------
    engine:
        ``"auto"`` | ``"reference"`` | ``"fast"`` — executor selection,
        exactly as the old ``engine=`` kwarg.
    workers:
        ``None``/``0``/``1`` serial, ``"auto"`` for the core count, or
        an explicit worker-process count.
    max_fan_in:
        Cap on runs merged per step in the reference merge executors
        (graceful degradation to multi-step merges beyond it).
    memory_budget:
        Per-query budget in bytes (or a string like ``"1MiB"``) charged
        through :class:`repro.exec.memory.MemoryAccountant`; exceeding
        it spills buffered output runs to disk and reduces merge fan-in
        under pressure.  ``None`` disables governance entirely.
    spill_dir:
        Directory for spill files; ``None`` uses the system temp dir.
    shard_timeout_s / shard_retries:
        The pool's :class:`RetryPolicy` (see there).
    data_plane:
        Worker IPC protocol: ``"auto"`` (shared-memory plane whenever
        the job qualifies — fast-path engine under ``fork``), ``"shm"``
        (force the plane; error when impossible), or ``"pickle"``
        (force the legacy pickled-chunk protocol).  See
        :mod:`repro.parallel.shm`.
    trace / metrics:
        Tri-state observability requests: ``True`` force-enables the
        span tracer / metrics registry for governed runs, ``False``
        keeps them off, ``None`` (default) follows whatever the process
        singletons are set to.
    cache:
        Order-cache mode (:mod:`repro.cache`): ``"off"`` (default)
        never consults it, ``"on"`` uses the process-wide cache
        (created on first use with this config's ``cache_budget`` /
        ``cache_ttl`` / ``spill_dir``), ``"auto"`` uses it only when
        something already created one — the same follow-the-singleton
        tri-state as ``trace``/``metrics``.
    cache_budget:
        Resident-byte budget for the order cache (int bytes or a
        ``parse_memory`` string); cold entries spill to disk beyond
        it.  ``None`` means unlimited.
    cache_ttl:
        Order-cache entry lifetime in seconds (``None`` = no expiry).
    service_threads:
        Scheduler threads of an :class:`~repro.serve.OrderService`
        built from this config (concurrent executions).
    service_queue_depth:
        Bound on the service's admission queue (pending executions,
        coalesced waiters excluded).  A full queue rejects new work
        with :class:`~repro.serve.ServiceOverloadError` instead of
        buffering unboundedly.
    service_deadline_ms:
        Default per-request deadline in milliseconds (``None`` = no
        deadline); requests that cannot be answered in time fail with
        :class:`~repro.serve.DeadlineExceededError`.
    plan_window_ms:
        Micro-batch window of the serving layer's derivation planner
        (:mod:`repro.plan`): after picking up a request, a scheduler
        thread keeps draining the admission queue for this many
        milliseconds and plans same-source siblings as one shared
        derivation tree.  ``None`` (default) disables batching —
        every request executes independently on arrival.
    """

    engine: str = "auto"
    workers: int | str | None = None
    max_fan_in: int | None = None
    memory_budget: int | None = None
    spill_dir: str | None = None
    shard_timeout_s: float | None = None
    shard_retries: int = 1
    data_plane: str = "auto"
    trace: bool | None = None
    metrics: bool | None = None
    cache: str = "off"
    cache_budget: int | None = None
    cache_ttl: float | None = None
    service_threads: int = 4
    service_queue_depth: int = 64
    service_deadline_ms: float | None = None
    plan_window_ms: float | None = None

    def __post_init__(self) -> None:
        if self.engine not in _ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; choose from {sorted(_ENGINES)}"
            )
        if self.data_plane not in _DATA_PLANES:
            raise ValueError(
                f"unknown data plane {self.data_plane!r}; "
                f"choose from {sorted(_DATA_PLANES)}"
            )
        if self.workers is not None and self.workers != "auto":
            if isinstance(self.workers, bool) or not isinstance(self.workers, int):
                raise ValueError(
                    "workers must be an int, 'auto', or None; "
                    f"got {self.workers!r}"
                )
            if self.workers < 0:
                raise ValueError(
                    f"workers must be non-negative, got {self.workers}"
                )
        if self.max_fan_in is not None and self.max_fan_in < 2:
            raise ValueError(
                f"max_fan_in must be at least 2, got {self.max_fan_in}"
            )
        object.__setattr__(
            self, "memory_budget", parse_memory(self.memory_budget)
        )
        if self.shard_timeout_s is not None and self.shard_timeout_s <= 0:
            raise ValueError(
                f"shard_timeout_s must be positive, got {self.shard_timeout_s}"
            )
        if self.shard_retries < 0:
            raise ValueError(
                f"shard_retries must be non-negative, got {self.shard_retries}"
            )
        if self.cache not in _CACHE_MODES:
            raise ValueError(
                f"unknown cache mode {self.cache!r}; "
                f"choose from {sorted(_CACHE_MODES)}"
            )
        object.__setattr__(
            self, "cache_budget", parse_memory(self.cache_budget)
        )
        if self.cache_ttl is not None and self.cache_ttl <= 0:
            raise ValueError(
                f"cache_ttl must be positive, got {self.cache_ttl}"
            )
        if (
            isinstance(self.service_threads, bool)
            or not isinstance(self.service_threads, int)
            or self.service_threads < 1
        ):
            raise ValueError(
                f"service_threads must be a positive int, "
                f"got {self.service_threads!r}"
            )
        if (
            isinstance(self.service_queue_depth, bool)
            or not isinstance(self.service_queue_depth, int)
            or self.service_queue_depth < 1
        ):
            raise ValueError(
                f"service_queue_depth must be a positive int, "
                f"got {self.service_queue_depth!r}"
            )
        if (
            self.service_deadline_ms is not None
            and self.service_deadline_ms <= 0
        ):
            raise ValueError(
                f"service_deadline_ms must be positive, "
                f"got {self.service_deadline_ms}"
            )
        if self.plan_window_ms is not None and self.plan_window_ms <= 0:
            raise ValueError(
                f"plan_window_ms must be positive, "
                f"got {self.plan_window_ms}"
            )

    # ------------------------------------------------------ constructors

    @classmethod
    def default(cls) -> "ExecutionConfig":
        """The environment-aware default used when no config is passed.

        Equivalent to :meth:`from_env`: a plain ``ExecutionConfig()``
        unless ``REPRO_*`` variables override fields, so a test matrix
        (e.g. ``REPRO_MEMORY_BUDGET=1MiB pytest``) governs every entry
        point without touching call sites.
        """
        return cls.from_env()

    @classmethod
    def from_env(
        cls,
        env: dict | None = None,
        base: "ExecutionConfig | None" = None,
    ) -> "ExecutionConfig":
        """Build a config from ``REPRO_*`` environment variables.

        Recognized: ``REPRO_ENGINE``, ``REPRO_WORKERS`` (int or
        ``auto``), ``REPRO_MAX_FAN_IN``, ``REPRO_MEMORY_BUDGET``
        (``parse_memory`` syntax), ``REPRO_SPILL_DIR``,
        ``REPRO_SHARD_TIMEOUT`` (seconds), ``REPRO_SHARD_RETRIES``,
        ``REPRO_DATA_PLANE`` (``auto``/``shm``/``pickle``),
        ``REPRO_CACHE`` (``off``/``on``/``auto``; ``1``/``0`` are
        accepted as ``on``/``off``), ``REPRO_CACHE_BUDGET``
        (``parse_memory`` syntax), ``REPRO_CACHE_TTL`` (seconds),
        ``REPRO_SERVICE_THREADS``, ``REPRO_SERVICE_QUEUE_DEPTH``,
        ``REPRO_SERVICE_DEADLINE_MS``, ``REPRO_PLAN_WINDOW_MS``.
        Unset variables keep the field
        defaults — or ``base``'s values when a base config is given
        (the config-precedence rule *file < env < flags* hangs off
        this parameter: pass :meth:`from_file`'s result as ``base``).
        """
        e = os.environ if env is None else env
        kwargs: dict = {}
        if e.get("REPRO_ENGINE"):
            kwargs["engine"] = e["REPRO_ENGINE"]
        if e.get("REPRO_WORKERS"):
            raw = e["REPRO_WORKERS"]
            kwargs["workers"] = raw if raw == "auto" else int(raw)
        if e.get("REPRO_MAX_FAN_IN"):
            kwargs["max_fan_in"] = int(e["REPRO_MAX_FAN_IN"])
        if e.get("REPRO_MEMORY_BUDGET"):
            kwargs["memory_budget"] = e["REPRO_MEMORY_BUDGET"]
        if e.get("REPRO_SPILL_DIR"):
            kwargs["spill_dir"] = e["REPRO_SPILL_DIR"]
        if e.get("REPRO_SHARD_TIMEOUT"):
            kwargs["shard_timeout_s"] = float(e["REPRO_SHARD_TIMEOUT"])
        if e.get("REPRO_SHARD_RETRIES"):
            kwargs["shard_retries"] = int(e["REPRO_SHARD_RETRIES"])
        if e.get("REPRO_DATA_PLANE"):
            kwargs["data_plane"] = e["REPRO_DATA_PLANE"]
        if e.get("REPRO_CACHE"):
            raw = e["REPRO_CACHE"].strip().lower()
            kwargs["cache"] = {"1": "on", "0": "off"}.get(raw, raw)
        if e.get("REPRO_CACHE_BUDGET"):
            kwargs["cache_budget"] = e["REPRO_CACHE_BUDGET"]
        if e.get("REPRO_CACHE_TTL"):
            kwargs["cache_ttl"] = float(e["REPRO_CACHE_TTL"])
        if e.get("REPRO_SERVICE_THREADS"):
            kwargs["service_threads"] = int(e["REPRO_SERVICE_THREADS"])
        if e.get("REPRO_SERVICE_QUEUE_DEPTH"):
            kwargs["service_queue_depth"] = int(e["REPRO_SERVICE_QUEUE_DEPTH"])
        if e.get("REPRO_SERVICE_DEADLINE_MS"):
            kwargs["service_deadline_ms"] = float(e["REPRO_SERVICE_DEADLINE_MS"])
        if e.get("REPRO_PLAN_WINDOW_MS"):
            kwargs["plan_window_ms"] = float(e["REPRO_PLAN_WINDOW_MS"])
        if base is not None:
            return base.with_(**kwargs) if kwargs else base
        return cls(**kwargs)

    @classmethod
    def from_file(cls, path: str) -> "ExecutionConfig":
        """Load a config from a JSON file of field name/value pairs.

        The file is a single JSON object whose keys are
        :class:`ExecutionConfig` field names (``{"workers": 4,
        "memory_budget": "64MiB", "cache": "on"}``); values pass
        through the same validation as keyword construction, so
        ``parse_memory`` strings work for the byte-sized fields.
        Unknown keys are an error — a typo in a config file should
        fail loudly, not silently configure nothing.

        This is the *file* layer of the precedence chain **file < env
        < flags**: CLI entry points load it first, lay ``REPRO_*``
        variables over it via ``from_env(base=...)``, and apply
        explicit flags last via :meth:`with_`.
        """
        with open(path, "r", encoding="utf-8") as fh:
            try:
                obj = json.load(fh)
            except json.JSONDecodeError as exc:
                raise ValueError(f"config file {path!r} is not valid JSON: {exc}")
        if not isinstance(obj, dict):
            raise ValueError(
                f"config file {path!r} must hold a JSON object of "
                f"ExecutionConfig fields, got {type(obj).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(obj) - known)
        if unknown:
            raise ValueError(
                f"config file {path!r} has unknown field(s) "
                f"{', '.join(unknown)}; valid fields: {', '.join(sorted(known))}"
            )
        return cls(**obj)

    def with_(self, **overrides) -> "ExecutionConfig":
        """A copy with the given fields replaced (validated anew)."""
        return dataclasses.replace(self, **overrides)

    # --------------------------------------------------------- accessors

    @property
    def retry_policy(self) -> RetryPolicy:
        """The pool fault-tolerance policy implied by this config."""
        return RetryPolicy(
            timeout_s=self.shard_timeout_s, retries=self.shard_retries
        )

    @property
    def governed(self) -> bool:
        """True when a memory budget is set (accountant + spill active)."""
        return self.memory_budget is not None
