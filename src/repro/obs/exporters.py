"""Span and metric exporters: JSON-lines, Chrome trace, Prometheus, tree.

Four consumers, four formats:

* :func:`write_jsonl` / :func:`read_jsonl` — the lossless archival
  format: one JSON object per line (``{"type": "span"|"metrics"|
  "meta", ...}``), streamable and diff-able.
* :func:`chrome_trace` — the Chrome trace-event format (``ph: "X"``
  complete events, microsecond timestamps), loadable in Perfetto or
  ``chrome://tracing``; per-process metadata events name the main
  process and each worker, and worker processes sort in first-shard
  order so the stitched timeline reads top to bottom in output order.
* :func:`prometheus_text` — Prometheus text exposition of the metrics
  registry (counters, gauges, histograms with power-of-two ``le``
  buckets).
* :func:`render_tree` — the human view: the span call tree with
  inclusive *and* self time per node, worker/shard tags inline.

:func:`validate_chrome_trace` is the schema check CI and tests run
against emitted artifacts.
"""

from __future__ import annotations

import json
import re as _re
from typing import Any, Iterable

from .metrics import MetricsRegistry

# JSON-lines --------------------------------------------------------------


def write_jsonl(
    path: str,
    records: Iterable[dict],
    metrics: dict | None = None,
    meta: dict | None = None,
) -> None:
    """Dump spans (and optional metrics/meta objects) one per line."""
    with open(path, "w") as fh:
        if meta is not None:
            fh.write(json.dumps({"type": "meta", **meta}) + "\n")
        for record in records:
            fh.write(json.dumps({"type": "span", **record}) + "\n")
        if metrics is not None:
            fh.write(json.dumps({"type": "metrics", "metrics": metrics}) + "\n")


def read_jsonl(path: str) -> tuple[list[dict], dict | None, dict | None]:
    """Read a JSON-lines artifact back: ``(spans, metrics, meta)``."""
    spans: list[dict] = []
    metrics: dict | None = None
    meta: dict | None = None
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            kind = obj.pop("type", "span")
            if kind == "span":
                spans.append(obj)
            elif kind == "metrics":
                metrics = obj.get("metrics")
            elif kind == "meta":
                meta = obj
    return spans, metrics, meta


# Chrome trace-event format ----------------------------------------------


def chrome_trace(records: Iterable[dict], metrics: dict | None = None) -> dict:
    """Convert span records to a Chrome trace-event JSON object.

    Timestamps are microseconds relative to the earliest span, so the
    viewer opens at t=0 regardless of wall-clock epoch.  Every process
    gets a ``process_name`` metadata event; worker processes (spans
    tagged with a shard) additionally get a ``process_sort_index`` of
    their first shard, stitching workers in shard order.
    """
    records = list(records)
    events: list[dict] = []
    if not records:
        return {"traceEvents": events, "displayTimeUnit": "ms"}
    t0 = min(r["start"] for r in records)
    pids: dict[int, dict] = {}
    for r in records:
        tags = r.get("tags", {})
        info = pids.setdefault(r["pid"], {"worker": None, "first_shard": None})
        if "worker" in tags:
            info["worker"] = tags["worker"]
        if "shard" in tags:
            shard = tags["shard"]
            if info["first_shard"] is None or shard < info["first_shard"]:
                info["first_shard"] = shard
        args: dict[str, Any] = dict(r.get("attrs", {}))
        args.update(tags)
        events.append(
            {
                "name": r["name"],
                "cat": "repro",
                "ph": "X",
                "ts": round((r["start"] - t0) * 1e6, 3),
                "dur": round(r["dur"] * 1e6, 3),
                "pid": r["pid"],
                "tid": 0,
                "args": args,
            }
        )
    for pid, info in pids.items():
        if info["first_shard"] is not None:
            label = f"worker pid={pid} (first shard {info['first_shard']})"
            sort_index = 1 + info["first_shard"]
        else:
            label = f"main pid={pid}"
            sort_index = 0
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
        events.append(
            {
                "name": "process_sort_index",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"sort_index": sort_index},
            }
        )
    if metrics is not None:
        events.append(
            {
                "name": "metrics",
                "ph": "M",
                "pid": min(pids),
                "tid": 0,
                "args": {"metrics": metrics},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str, records: Iterable[dict], metrics: dict | None = None
) -> dict:
    """Write :func:`chrome_trace` output to ``path``; returns the object."""
    obj = chrome_trace(records, metrics)
    with open(path, "w") as fh:
        json.dump(obj, fh, indent=1)
        fh.write("\n")
    return obj


def validate_chrome_trace(obj: Any) -> list[str]:
    """Schema-check a trace-event object; returns a list of problems."""
    errors: list[str] = []
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        return ["top level must be an object with a 'traceEvents' array"]
    events = obj["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be an array"]
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append(f"event {i}: not an object")
            continue
        for key in ("name", "ph", "pid"):
            if key not in ev:
                errors.append(f"event {i}: missing {key!r}")
        ph = ev.get("ph")
        if ph == "X":
            for key in ("ts", "dur"):
                if not isinstance(ev.get(key), (int, float)):
                    errors.append(f"event {i}: 'X' event needs numeric {key!r}")
                elif ev[key] < 0:
                    errors.append(f"event {i}: negative {key!r}")
        elif ph == "M":
            if not isinstance(ev.get("args"), dict):
                errors.append(f"event {i}: metadata event needs 'args'")
        elif ph is not None:
            errors.append(f"event {i}: unsupported phase {ph!r}")
    return errors


# Prometheus text exposition ---------------------------------------------

#: Prometheus metric-name grammar (we never emit colons, but the
#: grammar allows them).
_PROM_NAME_RE = _re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_PROM_LABEL_RE = _re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")
#: One sample line: ``name{labels} value`` with optional label block.
_PROM_SAMPLE_RE = _re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>(?:[a-zA-Z_][a-zA-Z0-9_]*="
    r'"(?:[^"\\\n]|\\["\\n])*",?)*)\})?'
    r" (?P<value>[^ ]+)$"
)


def _prom_name(name: str) -> str:
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return "repro_" + cleaned


def _prom_escape_label(value: Any) -> str:
    """Escape a label value per the text-format rules: ``\\``, ``"``,
    and newline must be backslash-escaped inside the quotes."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_escape_help(text: str) -> str:
    """``# HELP`` bodies escape only backslash and newline."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def prom_label_block(labels: dict[str, Any]) -> str:
    """Render ``{k="v",...}`` with sanitized names and escaped values."""
    if not labels:
        return ""
    parts = []
    for key, value in sorted(labels.items()):
        cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in key)
        if not cleaned or cleaned[0].isdigit():
            cleaned = "_" + cleaned
        parts.append(f'{cleaned}="{_prom_escape_label(value)}"')
    return "{" + ",".join(parts) + "}"


def prometheus_text(metrics: MetricsRegistry | dict) -> str:
    """Render a registry (or its :meth:`~MetricsRegistry.as_dict`) as
    Prometheus text exposition format.

    Every family gets ``# HELP`` and ``# TYPE`` lines; label values are
    escaped per the exposition-format rules.  Output round-trips
    through :func:`validate_prometheus_text`.
    """
    snap = metrics.as_dict() if isinstance(metrics, MetricsRegistry) else metrics
    lines: list[str] = []

    def head(pname: str, source: str, kind: str) -> None:
        lines.append(
            f"# HELP {pname} "
            + _prom_escape_help(f"repro {kind} '{source}'")
        )
        lines.append(f"# TYPE {pname} {kind}")

    for name, value in sorted(snap.get("counters", {}).items()):
        pname = _prom_name(name)
        head(pname, name, "counter")
        lines.append(f"{pname} {value}")
    for name, g in sorted(snap.get("gauges", {}).items()):
        pname = _prom_name(name)
        head(pname, name, "gauge")
        lines.append(f"{pname} {g['value']}")
        hwm = _prom_name(name) + "_max"
        lines.append(f"# HELP {hwm} " + _prom_escape_help(
            f"repro gauge '{name}' high-water mark"))
        lines.append(f"# TYPE {hwm} gauge")
        lines.append(f"{hwm} {g['max']}")
    for name, h in sorted(snap.get("histograms", {}).items()):
        pname = _prom_name(name)
        head(pname, name, "histogram")
        cumulative = 0
        for bucket, n in sorted(
            ((int(b), n) for b, n in h["buckets"].items())
        ):
            cumulative += n
            le = prom_label_block({"le": 2 ** bucket})
            lines.append(f"{pname}_bucket{le} {cumulative}")
        lines.append(f'{pname}_bucket{{le="+Inf"}} {h["count"]}')
        lines.append(f"{pname}_sum {h['sum']}")
        lines.append(f"{pname}_count {h['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def validate_prometheus_text(text: str) -> list[str]:
    """Grammar-check text exposition output; returns a list of problems.

    A regex-based checker for the subset of the format we emit — metric
    and label name grammar, ``# HELP``/``# TYPE`` comment shape, every
    sample before its family's ``# TYPE``, parseable values, histogram
    buckets cumulative with a ``+Inf`` terminal matching ``_count``.
    Empty list means the page would scrape cleanly.
    """
    errors: list[str] = []
    typed: dict[str, str] = {}
    bucket_last: dict[str, float] = {}
    bucket_final: dict[str, float] = {}
    counts: dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 4 or parts[1] not in ("HELP", "TYPE"):
                errors.append(f"line {lineno}: malformed comment {line!r}")
                continue
            if not _PROM_NAME_RE.fullmatch(parts[2]):
                errors.append(f"line {lineno}: bad metric name {parts[2]!r}")
            if parts[1] == "TYPE":
                if parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"
                ):
                    errors.append(f"line {lineno}: bad type {parts[3]!r}")
                elif parts[2] in typed:
                    errors.append(
                        f"line {lineno}: duplicate TYPE for {parts[2]!r}"
                    )
                else:
                    typed[parts[2]] = parts[3]
            continue
        m = _PROM_SAMPLE_RE.match(line)
        if m is None:
            errors.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name, labels, value = m.group("name", "labels", "value")
        try:
            fval = float(value)
        except ValueError:
            errors.append(f"line {lineno}: bad value {value!r}")
            continue
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                family = name[: -len(suffix)]
                break
        if family not in typed:
            errors.append(
                f"line {lineno}: sample {name!r} has no preceding # TYPE"
            )
        label_map: dict[str, str] = {}
        if labels:
            for pair in _re.findall(
                r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\["\\n])*)"', labels
            ):
                if not _PROM_LABEL_RE.fullmatch(pair[0]):
                    errors.append(
                        f"line {lineno}: bad label name {pair[0]!r}"
                    )
                label_map[pair[0]] = pair[1]
        if name.endswith("_bucket") and typed.get(family) == "histogram":
            le = label_map.get("le")
            if le is None:
                errors.append(f"line {lineno}: bucket without 'le' label")
                continue
            if le == "+Inf":
                bucket_final[family] = fval
            else:
                prev = bucket_last.get(family)
                if prev is not None and fval < prev:
                    errors.append(
                        f"line {lineno}: non-cumulative bucket for {family!r}"
                    )
                bucket_last[family] = fval
        elif name.endswith("_count") and typed.get(family) == "histogram":
            counts[family] = fval
    for family, final in bucket_final.items():
        if family in counts and counts[family] != final:
            errors.append(
                f"histogram {family!r}: +Inf bucket {final} != count "
                f"{counts[family]}"
            )
        last = bucket_last.get(family)
        if last is not None and last > final:
            errors.append(
                f"histogram {family!r}: finite bucket {last} exceeds +Inf "
                f"{final}"
            )
    return errors


# Human tree view ---------------------------------------------------------


def _fmt_seconds(s: float) -> str:
    if s >= 1.0:
        return f"{s:.3f}s"
    return f"{s * 1e3:.2f}ms"


def _label(record: dict) -> str:
    parts = [record["name"]]
    tags = record.get("tags")
    if tags:
        parts.append(
            "[" + " ".join(f"{k}={v}" for k, v in sorted(tags.items())) + "]"
        )
    attrs = record.get("attrs")
    if attrs:
        parts.append(" ".join(f"{k}={v}" for k, v in sorted(attrs.items())))
    return "  ".join(parts)


def render_tree(records: Iterable[dict], max_children: int = 64) -> str:
    """Render spans as an indented tree with inclusive and self time.

    Spans nest by their parent links within each process; processes are
    ordered main first, then workers by first shard.  Self time is the
    span's duration minus its direct children's durations — the work
    the phase did itself rather than delegated.
    """
    records = list(records)
    if not records:
        return "(no spans recorded)"
    by_key = {(r["pid"], r["id"]): r for r in records}
    children: dict[tuple, list[dict]] = {}
    roots: list[dict] = []
    for r in records:
        parent = r.get("parent")
        key = (r["pid"], parent)
        if parent is not None and key in by_key:
            children.setdefault(key, []).append(r)
        else:
            roots.append(r)

    def sort_key(r: dict) -> tuple:
        tags = r.get("tags", {})
        return (tags.get("shard", -1), r["start"])

    lines: list[str] = []

    def emit(r: dict, depth: int) -> None:
        kids = sorted(children.get((r["pid"], r["id"]), []), key=sort_key)
        self_s = r["dur"] - sum(k["dur"] for k in kids)
        timing = _fmt_seconds(r["dur"])
        if kids:
            timing += f" (self {_fmt_seconds(max(self_s, 0.0))})"
        lines.append(f"{'  ' * depth}{_label(r)}  {timing}")
        shown = kids[:max_children]
        for kid in shown:
            emit(kid, depth + 1)
        if len(kids) > len(shown):
            rest = kids[len(shown):]
            lines.append(
                f"{'  ' * (depth + 1)}... {len(rest)} more spans "
                f"({_fmt_seconds(sum(k['dur'] for k in rest))} total)"
            )

    for root in sorted(roots, key=sort_key):
        emit(root, 0)
    return "\n".join(lines)
