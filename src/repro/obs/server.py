"""Live telemetry plane: a dependency-free ``/metrics`` + ``/healthz``
HTTP endpoint.

Everything the obs package collects — counters, gauges, histograms,
spans — existed only as post-hoc file dumps before this module.  The
telemetry server makes it *live*: a ``ThreadingHTTPServer`` on a
background daemon thread that any entry point can start
(:func:`start_telemetry_server`), serving three read-only endpoints:

* ``GET /metrics`` — Prometheus text exposition of the process
  registry (with ``# HELP``/``# TYPE`` lines), scrapeable mid-query:
  the registry snapshot is taken atomically enough that concurrent
  metric bumps never break a scrape.
* ``GET /healthz`` — liveness plus derived health: worker-pool
  degradation (``pool.shard_degraded``), memory-budget pressure (from
  the active :class:`~repro.exec.memory.MemoryAccountant`), and spill
  activity.  Always ``200`` while the process serves (a degraded pool
  is an *observation*, not a death sentence); the JSON body carries
  ``status: "ok" | "degraded"`` with per-check detail.
* ``GET /varz`` — the kitchen sink as JSON: the full metrics snapshot,
  tracer state (span counts plus the open span chain), the governing
  :class:`~repro.exec.ExecutionConfig`, recent slow-query entries, and
  process vitals.  For humans and debug tooling, not dashboards.

The server never takes a query down and never 500s: every request is
answered from snapshots inside a catch-all (failures degrade to a
``503`` with the error in the body), and ``ThreadingHTTPServer`` keeps
one slow scraper from blocking the next.  Scrape cost is proportional
to the metric count, never to data size.

CLI: ``python -m repro serve --telemetry-port P`` runs a standalone
telemetry process; ``--telemetry-port P`` on any experiment serves
while the experiment runs.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from .logging import LOG
from .metrics import METRICS
from .spans import TRACER

#: Process start (import) time, for uptime reporting.
_EPOCH = time.time()


def health_snapshot(config: Any = None) -> dict:
    """Derive process health from the live registry and accountant.

    ``status`` is ``"ok"`` or ``"degraded"``; each check reports its
    own status plus the numbers it judged.  Degraded means "serving,
    but something needed fault recovery or budget pressure" — the
    process is alive either way (that is what the HTTP 200 says).
    """
    from ..exec import memory

    snap = METRICS.as_dict()
    counters = snap.get("counters", {})
    checks: dict[str, dict] = {}

    degraded = counters.get("pool.shard_degraded", 0)
    retries = counters.get("pool.shard_retries", 0)
    checks["pool"] = {
        "status": "degraded" if degraded else "ok",
        "shard_degraded": degraded,
        "shard_retries": retries,
    }

    accountant = memory.current()
    if accountant is not None:
        checks["memory"] = {
            "status": "pressure" if accountant.over_budget() else "ok",
            "used_bytes": accountant.used,
            "peak_bytes": accountant.peak,
            "budget_bytes": accountant.budget,
            "spills": accountant.spill_count,
        }
    else:
        checks["memory"] = {
            "status": "ok",
            "governed": False,
            "peak_bytes": snap.get("gauges", {})
            .get("exec.mem.peak_bytes", {})
            .get("max", 0),
        }

    checks["spill"] = {
        "status": "ok",
        "runs": counters.get("exec.spill.runs", 0),
        "bytes_written": counters.get("exec.spill.bytes_written", 0),
    }

    checks["cache"] = {
        "status": "ok",
        "hits": counters.get("cache.hits", 0),
        "misses": counters.get("cache.misses", 0),
        "entries": snap.get("gauges", {})
        .get("cache.entries", {})
        .get("value", 0),
    }

    from ..serve.service import current_service

    service = current_service()
    if service is not None:
        checks["service"] = service.health()
    else:
        rejected = counters.get("serve.rejected_overload", 0)
        missed = counters.get("serve.deadline_exceeded", 0)
        checks["service"] = {
            "status": "degraded" if rejected or missed else "ok",
            "running": False,
            "requests": counters.get("serve.requests", 0),
            "executions": counters.get("serve.executions", 0),
            "coalesced": counters.get("serve.coalesced_requests", 0),
            "rejected": rejected,
            "deadline_exceeded": missed,
        }

    bad = [
        name for name, check in checks.items() if check["status"] != "ok"
    ]
    return {
        "status": "degraded" if bad else "ok",
        "degraded_checks": bad,
        "pid": os.getpid(),
        "uptime_s": round(time.time() - _EPOCH, 3),
        "metrics_enabled": METRICS.enabled,
        "tracing_enabled": TRACER.enabled,
        "checks": checks,
    }


def varz_snapshot(config: Any = None) -> dict:
    """Everything, as JSON: metrics + spans + config + process vitals."""
    from .slowlog import SLOWLOG

    open_spans: list[dict] = []
    if TRACER.enabled:
        current = TRACER._current
        while current is not None:
            open_spans.append({"id": current.sid, "name": current.name})
            current = current.parent
        open_spans.reverse()
    config_dict: dict | None = None
    if config is not None:
        import dataclasses

        config_dict = dataclasses.asdict(config)
    return {
        "pid": os.getpid(),
        "python": sys.version.split()[0],
        "uptime_s": round(time.time() - _EPOCH, 3),
        "argv": sys.argv,
        "config": config_dict,
        "metrics": METRICS.as_dict(),
        "spans": {
            "enabled": TRACER.enabled,
            "recorded": len(TRACER.records),
            "open": open_spans,
        },
        "slowlog": {
            "enabled": SLOWLOG.enabled,
            "threshold_ms": SLOWLOG.threshold_ms,
            "entries": list(SLOWLOG.entries)[-20:],
        },
        "health": health_snapshot(config),
    }


class _TelemetryHandler(BaseHTTPRequestHandler):
    """Routes the three endpoints; never lets an error escape as a 500."""

    server_version = "repro-telemetry/1"
    #: Set by :class:`TelemetryServer` when it builds the handler class.
    telemetry: "TelemetryServer"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            if path == "/metrics":
                from .exporters import prometheus_text

                body = prometheus_text(METRICS)
                if not body:
                    body = (
                        "# metrics registry empty"
                        + ("" if METRICS.enabled else " (disabled)")
                        + "\n"
                    )
                self._respond(
                    200, body, "text/plain; version=0.0.4; charset=utf-8"
                )
            elif path in ("/healthz", "/health"):
                self._respond_json(200, health_snapshot(self.telemetry.config))
            elif path == "/varz":
                self._respond_json(200, varz_snapshot(self.telemetry.config))
            elif path == "/":
                self._respond(
                    200,
                    "repro telemetry: /metrics /healthz /varz\n",
                    "text/plain; charset=utf-8",
                )
            else:
                self._respond_json(404, {"error": f"no route {path!r}"})
        except Exception as exc:  # noqa: BLE001 - the contract is "never 500"
            if METRICS.enabled:
                METRICS.counter("server.errors").inc()
            try:
                self._respond_json(503, {"error": repr(exc)})
            except OSError:  # pragma: no cover - client went away
                pass

    def _respond(self, code: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)
        if METRICS.enabled:
            METRICS.counter("server.requests").inc()

    def _respond_json(self, code: int, obj: dict) -> None:
        self._respond(
            code, json.dumps(obj, default=str) + "\n", "application/json"
        )

    def log_message(self, fmt: str, *args: Any) -> None:
        """Route access logs to the structured logger (never stderr spam)."""
        if LOG.enabled:
            LOG.event("server.request", detail=fmt % args)


class TelemetryServer:
    """One background telemetry endpoint for this process."""

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        config: Any = None,
    ) -> None:
        self.config = config
        handler = type(
            "_BoundTelemetryHandler", (_TelemetryHandler,), {"telemetry": self}
        )
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "TelemetryServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-telemetry",
                kwargs={"poll_interval": 0.2},
                daemon=True,
            )
            self._thread.start()
            LOG.event("server.started", url=self.url)
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


#: The process singleton (:func:`start_telemetry_server` manages it).
_SERVER: TelemetryServer | None = None
_SERVER_LOCK = threading.Lock()


def start_telemetry_server(
    port: int = 0,
    host: str = "127.0.0.1",
    config: Any = None,
) -> TelemetryServer:
    """Start (or return) the process's telemetry server.

    Idempotent: a second call returns the running server (ignoring a
    different requested port — one process, one telemetry plane).
    ``port=0`` picks a free port; read it from ``server.port``.
    """
    global _SERVER
    with _SERVER_LOCK:
        if _SERVER is not None and _SERVER.running:
            if config is not None:
                _SERVER.config = config
            return _SERVER
        _SERVER = TelemetryServer(port=port, host=host, config=config)
        return _SERVER.start()


def stop_telemetry_server() -> None:
    """Stop the process's telemetry server, if one is running."""
    global _SERVER
    with _SERVER_LOCK:
        if _SERVER is not None:
            _SERVER.stop()
            _SERVER = None
