"""Threshold-gated slow-query log: full forensics for outliers only.

Always-on tracing of every query is too much data at serving scale;
no telemetry at all makes the one slow query of the hour undebuggable.
The slow-query log threads the needle: every ``Query`` terminal,
``Sort``, and ``modify_sort_order`` times itself, and only executions
that exceed :attr:`SlowQueryLog.threshold_ms` are captured — with the
resolved ``order_strategy``, the per-phase span tree (when the tracer
is enabled the entry embeds the exact spans that query recorded), and
its comparison-counter delta.  Everything else pays two
``perf_counter`` calls and one comparison.

Entries land in a bounded in-memory ring (:attr:`SlowQueryLog.entries`
— newest last, inspectable from tests, ``/varz``, and post-mortems)
and, when a file is configured, as JSON-lines on disk.  Each capture
also emits a ``slowlog.entry`` structured-log event and bumps the
``slowlog.entries`` counter, so dashboards see the *rate* of slow
queries even when nobody is reading the captures.

Environment: ``REPRO_SLOWLOG_MS`` (a float threshold) enables at
import; ``REPRO_SLOWLOG_FILE`` adds the JSON-lines sink.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any

from .metrics import METRICS
from .spans import TRACER

#: Ring-buffer capacity for in-memory entries.
DEFAULT_CAPACITY = 256

#: Span-tree nodes kept per entry (forensics, not an archive).
MAX_TREE_NODES = 200


def span_tree(records: list[dict]) -> list[dict]:
    """Nest flat span records into ``{name, ms, children}`` trees.

    Works on the plain-dict records the tracer produces; parents link
    by ``(pid, id)``.  Durations are rounded to microsecond-ish
    precision — the tree is for reading, not re-timing.
    """
    by_key = {(r["pid"], r["id"]): r for r in records}
    children: dict[tuple, list[dict]] = {}
    roots: list[dict] = []
    for r in records:
        key = (r["pid"], r.get("parent"))
        if r.get("parent") is not None and key in by_key:
            children.setdefault(key, []).append(r)
        else:
            roots.append(r)
    budget = [MAX_TREE_NODES]

    def build(r: dict) -> dict | None:
        if budget[0] <= 0:
            return None
        budget[0] -= 1
        node: dict[str, Any] = {
            "name": r["name"],
            "ms": round(r["dur"] * 1e3, 3),
        }
        attrs = r.get("attrs")
        if attrs:
            node["attrs"] = attrs
        kids = sorted(
            children.get((r["pid"], r["id"]), []), key=lambda k: k["start"]
        )
        built = [b for b in (build(k) for k in kids) if b is not None]
        if built:
            node["children"] = built
        return node

    return [b for b in (build(r) for r in sorted(roots, key=lambda x: x["start"]))
            if b is not None]


class SlowQueryLog:
    """Captures any query/modify slower than the configured threshold."""

    def __init__(self) -> None:
        #: Threshold in milliseconds; ``None`` disables capture.
        self.threshold_ms: float | None = None
        self.entries: deque[dict] = deque(maxlen=DEFAULT_CAPACITY)
        self._path: str | None = None
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.threshold_ms is not None

    # ----------------------------------------------------------- lifecycle

    def enable(
        self,
        threshold_ms: float,
        path: str | None = None,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        """Capture executions slower than ``threshold_ms`` (0 = all)."""
        if threshold_ms < 0:
            raise ValueError(
                f"threshold_ms must be non-negative, got {threshold_ms}"
            )
        self.threshold_ms = float(threshold_ms)
        self._path = path
        self.entries = deque(self.entries, maxlen=capacity)

    def disable(self) -> None:
        self.threshold_ms = None
        self._path = None

    def clear(self) -> None:
        self.entries.clear()

    # ------------------------------------------------------------- capture

    def mark(self) -> tuple[float, int] | None:
        """Start watching one execution; pass the mark to :meth:`record`.

        The mark pins the wall-clock start and the tracer's record
        index, so a slow capture can slice out exactly the spans this
        execution produced.  ``None`` while disabled (and
        :meth:`record` accepts ``None`` as a no-op), so call sites need
        no conditional.
        """
        if self.threshold_ms is None:
            return None
        spans_at = len(TRACER.records) if TRACER.enabled else -1
        return (time.perf_counter(), spans_at)

    def record(
        self,
        mark: tuple[float, int] | None,
        kind: str,
        *,
        strategy: str | None = None,
        stats: Any = None,
        **info: Any,
    ) -> dict | None:
        """Close a watched execution; capture it if over threshold.

        ``stats`` is a :class:`~repro.ovc.stats.ComparisonStats` (or
        anything with ``as_dict()``) holding the execution's counter
        *delta*.  Returns the entry when one was captured.
        """
        if mark is None or self.threshold_ms is None:
            return None
        t0, spans_at = mark
        elapsed_ms = (time.perf_counter() - t0) * 1e3
        if elapsed_ms < self.threshold_ms:
            return None
        entry: dict[str, Any] = {
            "ts": round(time.time(), 6),
            "kind": kind,
            "elapsed_ms": round(elapsed_ms, 3),
            "threshold_ms": self.threshold_ms,
            "pid": os.getpid(),
        }
        from .logging import LOG

        qid = LOG.current_query_id()
        if qid is not None:
            entry["qid"] = qid
        if strategy is not None:
            entry["order_strategy"] = strategy
        if stats is not None:
            entry["comparisons"] = stats.as_dict()
        if spans_at >= 0 and TRACER.enabled:
            entry["phases"] = span_tree(TRACER.records[spans_at:])
        entry.update(info)
        with self._lock:
            self.entries.append(entry)
            if self._path is not None:
                try:
                    with open(self._path, "a", encoding="utf-8") as fh:
                        fh.write(json.dumps(entry, default=str) + "\n")
                except OSError:
                    self._path = None  # a broken sink must not kill queries
        if METRICS.enabled:
            METRICS.counter("slowlog.entries").inc()
        LOG.event(
            "slowlog.entry",
            kind=kind,
            elapsed_ms=entry["elapsed_ms"],
            strategy=strategy,
        )
        return entry


#: The process-wide slow-query log.  ``REPRO_SLOWLOG_MS=250`` (ms)
#: enables at import; ``REPRO_SLOWLOG_FILE`` adds the JSON-lines sink.
SLOWLOG = SlowQueryLog()
if os.environ.get("REPRO_SLOWLOG_MS", "") not in ("", "0"):
    SLOWLOG.enable(
        float(os.environ["REPRO_SLOWLOG_MS"]),
        path=os.environ.get("REPRO_SLOWLOG_FILE") or None,
    )
