"""Low-overhead span tracer: nested, monotonic-clock timed intervals.

A *span* is one timed interval of work — a modify phase, a segment
sort, a merge pass, a worker shard — with a name, free-form attributes,
and a parent link, so finished spans reassemble into a call tree.  The
paper's headline claims are work claims (Figure 10 counts comparisons,
Figure 11 splits time across methods); spans are how that work is
located *inside* a run instead of summed over it.

Design constraints, in order:

1. **Disabled is (almost) free.**  :meth:`Tracer.span` on a disabled
   tracer returns a shared no-op singleton without allocating anything;
   the total cost is one attribute check plus a context-manager
   protocol round trip.  Call sites therefore instrument at *phase*
   granularity (per segment, per merge pass, per shard) — never per
   row — and the bench smoke stays within its 5% budget (enforced by
   ``benchmarks/check_trace_overhead.py``).
2. **Durations are monotonic.**  Spans are timed with
   ``time.perf_counter``; a wall-clock anchor captured at enable time
   converts start times to epoch seconds only on export, so spans from
   different processes land on one comparable timeline without any
   process ever reading the wall clock on the hot path.
3. **Records are plain dicts.**  Finished spans pickle across the
   parallel worker boundary and dump to JSON without conversion.

Record schema::

    {"name": str, "start": float,  # epoch seconds
     "dur": float,                 # seconds
     "pid": int, "id": int, "parent": int | None,
     "attrs": {...},               # only if non-empty
     "tags": {...}}                # worker/shard labels, added on stitch
"""

from __future__ import annotations

import functools
import os
import time
from typing import Any, Callable


class _NullSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _LiveSpan:
    """One open span; appends its record to the tracer on exit."""

    __slots__ = ("_tracer", "name", "attrs", "sid", "parent", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.sid = 0
        self.parent: _LiveSpan | None = None
        self._t0 = 0.0

    def set(self, **attrs: Any) -> "_LiveSpan":
        """Attach attributes mid-span (e.g. once a count is known)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_LiveSpan":
        tracer = self._tracer
        self.sid = tracer._next_id
        tracer._next_id += 1
        self.parent = tracer._current
        tracer._current = self
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        t1 = time.perf_counter()
        tracer = self._tracer
        record = {
            "name": self.name,
            "start": self._t0 + tracer._epoch,
            "dur": t1 - self._t0,
            "pid": tracer._pid,
            "id": self.sid,
            "parent": self.parent.sid if self.parent is not None else None,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        tracer.records.append(record)
        # Generators may close spans out of LIFO order (a Limit stops
        # pulling its child; the child's span closes later, on GC).
        # Only pop the stack when we are actually on top of it.
        if tracer._current is self:
            tracer._current = self.parent
        return False


class Tracer:
    """Per-process span collector.

    One module-level instance (:data:`TRACER`) serves the whole
    process; parallel workers reset and re-enable their (inherited or
    fresh) instance per job, so records never leak across processes.
    """

    __slots__ = ("enabled", "records", "_current", "_next_id", "_epoch", "_pid")

    def __init__(self) -> None:
        self.enabled = False
        self.records: list[dict] = []
        self._current: _LiveSpan | None = None
        self._next_id = 1
        self._epoch = 0.0
        self._pid = 0

    def span(self, name: str, **attrs: Any):
        """Open a span (use as a context manager).

        Disabled tracers return the shared no-op singleton; enabled
        tracers return a live span that records itself on exit.
        """
        if not self.enabled:
            return NULL_SPAN
        return _LiveSpan(self, name, attrs)

    def traced(self, name: str | None = None) -> Callable:
        """Decorator form: time every call of the wrapped function."""

        def decorate(fn: Callable) -> Callable:
            span_name = name if name is not None else fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args: Any, **kwargs: Any):
                if not self.enabled:
                    return fn(*args, **kwargs)
                with self.span(span_name):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the innermost open span, if any.

        Lets deep callees enrich the phase span their caller opened
        (e.g. the resolved strategy) without threading span handles
        through every signature.
        """
        if self.enabled and self._current is not None:
            self._current.attrs.update(attrs)

    def enable(self, clear: bool = True) -> None:
        """Turn tracing on; by default dropping any stale records.

        The wall-clock anchor is (re)captured here, so spans recorded
        after a fork still export comparable epoch start times.
        """
        if clear:
            self.reset()
        self._epoch = time.time() - time.perf_counter()
        self._pid = os.getpid()
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.records = []
        self._current = None
        self._next_id = 1

    def drain(self) -> list[dict]:
        """Return all finished span records and clear the buffer."""
        records, self.records = self.records, []
        return records

    def add_records(self, records: list[dict]) -> None:
        """Stitch externally produced records (worker spans) in."""
        self.records.extend(records)


#: The process-wide tracer.  ``REPRO_TRACE=1`` enables it at import so
#: scripts and notebooks get tracing without code changes.
TRACER = Tracer()
if os.environ.get("REPRO_TRACE", "") not in ("", "0"):
    TRACER.enable()
