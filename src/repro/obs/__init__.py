"""Unified observability: span tracing + metrics for the whole engine.

The paper's claims are *work* claims — comparisons avoided, time spent
per method — so this package gives every layer (core modify pipeline,
fastpath kernels, external sort, engine operators, parallel workers)
one way to say where the work went:

* :data:`TRACER` (:mod:`repro.obs.spans`) — nestable, monotonic-clock
  spans with a no-op singleton fast path when disabled;
* :data:`METRICS` (:mod:`repro.obs.metrics`) — named counters, gauges,
  and histograms generalizing
  :class:`~repro.ovc.stats.ComparisonStats`, merged across worker
  processes;
* :mod:`repro.obs.exporters` — JSON-lines, Chrome trace-event (loads
  in Perfetto), Prometheus text exposition, and a human tree view;
* :data:`LOG` (:mod:`repro.obs.logging`) — structured JSON-lines
  events with query-id/span-id correlation;
* :data:`SLOWLOG` (:mod:`repro.obs.slowlog`) — threshold-gated
  slow-query captures (strategy, span tree, comparison counters);
* :mod:`repro.obs.server` — the live ``/metrics`` + ``/healthz`` +
  ``/varz`` HTTP endpoint (:func:`~repro.obs.server.
  start_telemetry_server`);
* :mod:`repro.obs.profile` — a dependency-free sampling profiler with
  collapsed-stack (flamegraph) export.

Quick use::

    from repro.obs import TRACER, METRICS
    from repro.obs.exporters import render_tree, write_chrome_trace

    TRACER.enable(); METRICS.enable()
    ... run a modify / query / sort ...
    print(render_tree(TRACER.records))
    write_chrome_trace("trace.json", TRACER.drain(), METRICS.as_dict())

Environment knobs: ``REPRO_TRACE=1`` / ``REPRO_METRICS=1`` /
``REPRO_LOG=PATH`` / ``REPRO_SLOWLOG_MS=N`` enable collection at
import; the CLI flags ``--trace FILE`` / ``--metrics`` / ``--profile
FILE`` / ``--telemetry-port P`` (``python -m repro bench``, ``python
-m repro trace``, ``python -m repro serve``) do the same per run and
export the artifacts.
"""

from .logging import LOG, StructuredLogger
from .metrics import METRICS, Counter, Gauge, Histogram, MetricsRegistry
from .slowlog import SLOWLOG, SlowQueryLog
from .spans import NULL_SPAN, TRACER, Tracer

__all__ = [
    "TRACER",
    "Tracer",
    "NULL_SPAN",
    "METRICS",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "LOG",
    "StructuredLogger",
    "SLOWLOG",
    "SlowQueryLog",
]
