"""Unified observability: span tracing + metrics for the whole engine.

The paper's claims are *work* claims — comparisons avoided, time spent
per method — so this package gives every layer (core modify pipeline,
fastpath kernels, external sort, engine operators, parallel workers)
one way to say where the work went:

* :data:`TRACER` (:mod:`repro.obs.spans`) — nestable, monotonic-clock
  spans with a no-op singleton fast path when disabled;
* :data:`METRICS` (:mod:`repro.obs.metrics`) — named counters, gauges,
  and histograms generalizing
  :class:`~repro.ovc.stats.ComparisonStats`, merged across worker
  processes;
* :mod:`repro.obs.exporters` — JSON-lines, Chrome trace-event (loads
  in Perfetto), Prometheus text exposition, and a human tree view.

Quick use::

    from repro.obs import TRACER, METRICS
    from repro.obs.exporters import render_tree, write_chrome_trace

    TRACER.enable(); METRICS.enable()
    ... run a modify / query / sort ...
    print(render_tree(TRACER.records))
    write_chrome_trace("trace.json", TRACER.drain(), METRICS.as_dict())

Environment knobs: ``REPRO_TRACE=1`` / ``REPRO_METRICS=1`` enable
collection at import; the CLI flags ``--trace FILE`` / ``--metrics``
(``python -m repro bench``, ``python -m repro trace``) do the same per
run and export the artifacts.
"""

from .metrics import METRICS, Counter, Gauge, Histogram, MetricsRegistry
from .spans import NULL_SPAN, TRACER, Tracer

__all__ = [
    "TRACER",
    "Tracer",
    "NULL_SPAN",
    "METRICS",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
]
