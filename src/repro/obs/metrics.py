"""Metrics registry: named counters, gauges, and histograms.

:class:`~repro.ovc.stats.ComparisonStats` counts the paper's five
comparison-economy measures, but it is a closed dataclass — every new
measurement (merge fan-in, run lengths, segment sizes, pool depth,
backpressure waits) would mean another field threaded through every
executor signature.  The registry generalizes it: any instrumented site
names a metric and bumps it, and the whole set merges across processes
as one plain dict (the parallel workers ship their registry deltas home
with their final result chunk).

Three instrument kinds:

* :class:`Counter` — monotonically increasing total (int or float,
  e.g. backpressure seconds).
* :class:`Gauge` — a level that moves both ways (pool in-flight depth);
  tracks its high-water mark, which is what merges meaningfully across
  processes.
* :class:`Histogram` — a distribution summarized as count/sum/min/max
  plus power-of-two buckets (bucket ``k`` counts observations with
  ``2**(k-1) < v <= 2**k``), which is exact enough for fan-ins and
  segment sizes and merges by simple addition.

Like the tracer, the registry is off by default and every hot call site
gates on :attr:`MetricsRegistry.enabled`, so the disabled cost is one
attribute check.

Name registry
-------------

Every metric name bumped anywhere in ``src/`` is listed here (a test
greps the source and checks this docstring, so the registry cannot
drift).  Counters:

* ``adjust.derived_codes`` / ``adjust.saved_run_heads`` — OVC
  adjustment economy in merge-of-runs.
* ``cache.hits`` / ``cache.misses`` / ``cache.installs`` /
  ``cache.evictions`` / ``cache.expirations`` / ``cache.spills`` /
  ``cache.rehydrates`` / ``cache.rejected`` — order-cache lifecycle;
  ``cache.modify_serves`` (related order produced by modifying a
  cached one) and ``cache.comparisons_saved`` (column comparisons
  avoided by exact hits).
* ``exec.fan_in_reduced`` — merges split to honor ``max_fan_in``.
* ``exec.mem.charged_bytes`` / ``exec.mem.spills`` /
  ``exec.mem.pressure_events`` — memory-accountant activity.
* ``exec.spill.runs`` / ``exec.spill.bytes_written`` /
  ``exec.spill.bytes_read`` — spill-file traffic.
* ``extsort.respilled_rows`` — external-sort rows spilled again.
* ``log.events`` — structured-log lines emitted.
* ``merge.degraded_merges`` — merges that fell back to column compares.
* ``pool.pack_seconds`` / ``pool.compute_seconds`` /
  ``pool.ipc_seconds`` / ``pool.ipc_bytes`` — pool phase accounting;
  ``pool.backpressure_wait_seconds`` — producer stalls;
  ``pool.shard_retries`` / ``pool.shard_degraded`` — fault recovery;
  ``pool.shm_blocks`` / ``pool.shm_bytes`` — shared-memory data plane;
  ``pool.adaptive_serial`` — auto dispatch stayed serial below the
  calibrated break-even.
* ``plan.batches`` / ``plan.nodes`` — batch derivation-planner runs
  and orders they produced; ``plan.sibling_derivations`` — orders
  derived from another *requested* order's fresh result;
  ``plan.fallbacks`` — planned parents that were unusable at
  execution (evicted entry, kernel type error) and re-derived from
  the source.
* ``profile.samples`` — stacks collected by the sampling profiler.
* ``serve.requests`` / ``serve.executions`` /
  ``serve.coalesced_requests`` — order-service traffic (requests
  admitted, sorts actually run, duplicates that shared another
  request's execution); ``serve.rejected_overload`` — admissions shed
  at the bounded queue; ``serve.deadline_exceeded`` — requests that
  missed their deadline (queued-expired or waited-too-long);
  ``serve.errors`` — executions that failed;
  ``serve.planned_requests`` / ``serve.planned_batches`` — requests
  answered through the micro-batch derivation planner and the
  batches formed; ``serve.normalized_orders`` — submitted orders
  truncated to their row-unique prefix.
* ``server.requests`` / ``server.errors`` — telemetry-endpoint traffic.
* ``slowlog.entries`` — slow-query captures.

Gauges:

* ``cache.bytes_resident`` / ``cache.entries`` — order-cache footprint.
* ``calibrate.kernel_ns_row`` / ``calibrate.pickle_ns_row`` /
  ``calibrate.plane_ns_row`` / ``calibrate.min_parallel_rows_w2`` /
  ``calibrate.chunk_rows`` — what per-host calibration measured.
* ``exec.mem.used_bytes`` / ``exec.mem.peak_bytes`` — accountant level.
* ``pool.inflight_shards`` / ``pool.reorder_buffered_rows`` — pool
  depth and reorder-buffer size.
* ``serve.queue_depth`` / ``serve.inflight`` /
  ``serve.inflight_bytes`` — order-service admission-queue depth,
  in-flight executions, and bytes of source buffers held.
* ``streaming.buffered_rows`` — streaming-merge buffer depth.

Histograms:

* ``cache.hit_comparisons_saved`` — per-hit savings distribution.
* ``extsort.fan_in`` / ``extsort.run_rows`` — external-sort shape.
* ``merge.fan_in`` / ``merge.run_rows`` — merge-of-runs shape.
* ``modify.segment_rows`` / ``segment.rows`` — segment-sort sizes.
* ``plan.batch_size`` — orders per planned batch;
  ``plan.est_speedup`` — the plan's estimated comparisons saved vs
  independent execution.
* ``serve.latency_ms`` — per-request submit-to-response latency;
  ``serve.fanout`` — waiters served per execution (coalescing win).

The ``comparisons.*`` family is dynamic (one counter per
:class:`~repro.ovc.stats.ComparisonStats` field via
:meth:`MetricsRegistry.absorb_stats`).
"""

from __future__ import annotations

import os

from ..ovc.stats import ComparisonStats


class Counter:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, n: float = 1) -> None:
        self.value += n


class Gauge:
    __slots__ = ("value", "max")

    def __init__(self) -> None:
        self.value: float = 0
        self.max: float = 0

    def set(self, v: float) -> None:
        self.value = v
        if v > self.max:
            self.max = v

    def add(self, delta: float) -> None:
        self.set(self.value + delta)


class Histogram:
    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total: float = 0
        self.min: float | None = None
        self.max: float | None = None
        #: log2 bucket -> observation count.
        self.buckets: dict[int, int] = {}

    def observe(self, v: float) -> None:
        self.count += 1
        self.total += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v
        bucket = max(0, int(v) - 1).bit_length() if v >= 0 else -1
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Create-on-demand metric store with cross-process merging."""

    __slots__ = ("enabled", "_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self.enabled = False
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # Instrument accessors ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram()
        return h

    # Lifecycle --------------------------------------------------------------

    def enable(self, clear: bool = True) -> None:
        if clear:
            self.reset()
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # Serialization / merging ------------------------------------------------

    def absorb_stats(
        self, stats: ComparisonStats, prefix: str = "comparisons."
    ) -> None:
        """Publish a :class:`ComparisonStats` as named counters."""
        for name, value in stats.as_dict().items():
            self.counter(prefix + name).inc(value)

    def as_dict(self) -> dict:
        """Picklable/JSON-ready snapshot of every metric.

        Safe to call from a scraper thread while instrumented code
        keeps bumping: each dict (and each histogram's buckets) is
        pinned with ``list()`` before iteration, so a concurrent
        create-on-demand insert can never blow up the snapshot.
        """
        return {
            "counters": {k: c.value for k, c in list(self._counters.items())},
            "gauges": {
                k: {"value": g.value, "max": g.max}
                for k, g in list(self._gauges.items())
            },
            "histograms": {
                k: {
                    "count": h.count,
                    "sum": h.total,
                    "min": h.min,
                    "max": h.max,
                    "buckets": {
                        str(b): n
                        for b, n in sorted(list(h.buckets.items()))
                    },
                }
                for k, h in list(self._histograms.items())
            },
        }

    def merge(self, snapshot: dict | None) -> None:
        """Fold another registry's :meth:`as_dict` into this one.

        Counters and histograms add; gauges keep the highest level seen
        anywhere (per-process levels are not meaningfully summable).
        """
        if not snapshot:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, g in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            if g["max"] > gauge.max:
                gauge.max = g["max"]
            if g["value"] > gauge.value:
                gauge.value = g["value"]
        for name, h in snapshot.get("histograms", {}).items():
            hist = self.histogram(name)
            hist.count += h["count"]
            hist.total += h["sum"]
            if h["min"] is not None and (hist.min is None or h["min"] < hist.min):
                hist.min = h["min"]
            if h["max"] is not None and (hist.max is None or h["max"] > hist.max):
                hist.max = h["max"]
            for bucket, n in h["buckets"].items():
                b = int(bucket)
                hist.buckets[b] = hist.buckets.get(b, 0) + n


#: The process-wide registry; ``REPRO_METRICS=1`` enables at import.
METRICS = MetricsRegistry()
if os.environ.get("REPRO_METRICS", "") not in ("", "0"):
    METRICS.enable()
