"""Metrics registry: named counters, gauges, and histograms.

:class:`~repro.ovc.stats.ComparisonStats` counts the paper's five
comparison-economy measures, but it is a closed dataclass — every new
measurement (merge fan-in, run lengths, segment sizes, pool depth,
backpressure waits) would mean another field threaded through every
executor signature.  The registry generalizes it: any instrumented site
names a metric and bumps it, and the whole set merges across processes
as one plain dict (the parallel workers ship their registry deltas home
with their final result chunk).

Three instrument kinds:

* :class:`Counter` — monotonically increasing total (int or float,
  e.g. backpressure seconds).
* :class:`Gauge` — a level that moves both ways (pool in-flight depth);
  tracks its high-water mark, which is what merges meaningfully across
  processes.
* :class:`Histogram` — a distribution summarized as count/sum/min/max
  plus power-of-two buckets (bucket ``k`` counts observations with
  ``2**(k-1) < v <= 2**k``), which is exact enough for fan-ins and
  segment sizes and merges by simple addition.

Like the tracer, the registry is off by default and every hot call site
gates on :attr:`MetricsRegistry.enabled`, so the disabled cost is one
attribute check.

Well-known names grown so far (beyond the ``ovc.*`` comparison
counters): the pool's phase accounting ``pool.pack_seconds`` /
``pool.compute_seconds`` / ``pool.ipc_seconds`` / ``pool.ipc_bytes``,
the shared-memory data plane's ``pool.shm_blocks`` /
``pool.shm_bytes``, the adaptive dispatcher's ``pool.adaptive_serial``
(auto stayed serial below the calibrated break-even), and the
``calibrate.*`` gauges (``kernel_ns_row``, ``pickle_ns_row``,
``plane_ns_row``, ``min_parallel_rows_w2``, ``chunk_rows``) recording
what the per-host calibration measured and derived.

The order cache (:mod:`repro.cache`) publishes under ``cache.*``:
counters ``cache.hits`` / ``cache.misses`` / ``cache.installs`` /
``cache.evictions`` / ``cache.expirations`` / ``cache.spills`` /
``cache.rehydrates`` / ``cache.rejected`` / ``cache.modify_serves``
(related order produced by modifying a cached one) /
``cache.comparisons_saved`` (column comparisons avoided by exact
hits), gauges ``cache.bytes_resident`` / ``cache.entries``, and the
per-hit ``cache.hit_comparisons_saved`` histogram.
"""

from __future__ import annotations

import os

from ..ovc.stats import ComparisonStats


class Counter:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, n: float = 1) -> None:
        self.value += n


class Gauge:
    __slots__ = ("value", "max")

    def __init__(self) -> None:
        self.value: float = 0
        self.max: float = 0

    def set(self, v: float) -> None:
        self.value = v
        if v > self.max:
            self.max = v

    def add(self, delta: float) -> None:
        self.set(self.value + delta)


class Histogram:
    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total: float = 0
        self.min: float | None = None
        self.max: float | None = None
        #: log2 bucket -> observation count.
        self.buckets: dict[int, int] = {}

    def observe(self, v: float) -> None:
        self.count += 1
        self.total += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v
        bucket = max(0, int(v) - 1).bit_length() if v >= 0 else -1
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Create-on-demand metric store with cross-process merging."""

    __slots__ = ("enabled", "_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self.enabled = False
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # Instrument accessors ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram()
        return h

    # Lifecycle --------------------------------------------------------------

    def enable(self, clear: bool = True) -> None:
        if clear:
            self.reset()
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # Serialization / merging ------------------------------------------------

    def absorb_stats(
        self, stats: ComparisonStats, prefix: str = "comparisons."
    ) -> None:
        """Publish a :class:`ComparisonStats` as named counters."""
        for name, value in stats.as_dict().items():
            self.counter(prefix + name).inc(value)

    def as_dict(self) -> dict:
        """Picklable/JSON-ready snapshot of every metric."""
        return {
            "counters": {k: c.value for k, c in self._counters.items()},
            "gauges": {
                k: {"value": g.value, "max": g.max}
                for k, g in self._gauges.items()
            },
            "histograms": {
                k: {
                    "count": h.count,
                    "sum": h.total,
                    "min": h.min,
                    "max": h.max,
                    "buckets": {str(b): n for b, n in sorted(h.buckets.items())},
                }
                for k, h in self._histograms.items()
            },
        }

    def merge(self, snapshot: dict | None) -> None:
        """Fold another registry's :meth:`as_dict` into this one.

        Counters and histograms add; gauges keep the highest level seen
        anywhere (per-process levels are not meaningfully summable).
        """
        if not snapshot:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, g in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            if g["max"] > gauge.max:
                gauge.max = g["max"]
            if g["value"] > gauge.value:
                gauge.value = g["value"]
        for name, h in snapshot.get("histograms", {}).items():
            hist = self.histogram(name)
            hist.count += h["count"]
            hist.total += h["sum"]
            if h["min"] is not None and (hist.min is None or h["min"] < hist.min):
                hist.min = h["min"]
            if h["max"] is not None and (hist.max is None or h["max"] > hist.max):
                hist.max = h["max"]
            for bucket, n in h["buckets"].items():
                b = int(bucket)
                hist.buckets[b] = hist.buckets.get(b, 0) + n


#: The process-wide registry; ``REPRO_METRICS=1`` enables at import.
METRICS = MetricsRegistry()
if os.environ.get("REPRO_METRICS", "") not in ("", "0"):
    METRICS.enable()
