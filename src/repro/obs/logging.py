"""Structured JSON-lines logging with span and query correlation.

Spans answer *where time went*; metrics answer *how much work
happened*; this module answers *what the system decided* — the
discrete, low-frequency events an operator greps when a query behaved
strangely: which strategy a modify resolved to, why the cache declined
to serve, which shard was retried and for what reason, when the memory
budget tipped into pressure.  One event is one JSON object on one line,
so the log tails, greps, and loads into any log pipeline without a
parser.

Correlation keys stitch the event stream to the other planes:

* ``qid`` — a process-unique query id.  :meth:`StructuredLogger.
  query_scope` opens one at each public entry point (``Query``
  terminals, ``Sort``, ``modify_sort_order``); nested scopes reuse the
  enclosing id, so every event inside one logical query carries the
  same ``qid`` no matter how deep it was emitted.
* ``span`` / ``span_name`` — the innermost open span of the process
  tracer at emission time (only when tracing is enabled), linking an
  event into the span tree exported by :mod:`repro.obs.exporters`.

Every record also carries ``ts`` (epoch seconds), ``pid``, and
``event``.  Like the tracer and the metrics registry, the logger is a
process-wide singleton (:data:`LOG`) that is **off by default**; every
call site gates on :attr:`StructuredLogger.enabled`, so the disabled
cost is one attribute check.  ``REPRO_LOG=PATH`` (or ``stderr`` /
``stdout``) enables it at import.

Events are deliberately *decision-grade*, never per row: strategies
chosen, cache verdicts, shard retries/quarantines, spills, pressure
transitions, slow-query captures.  Volume stays proportional to
queries and faults, not to data.
"""

from __future__ import annotations

import io
import json
import os
import sys
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator, TextIO

from .metrics import METRICS
from .spans import TRACER


class StructuredLogger:
    """JSON-lines event sink with query-scope correlation."""

    def __init__(self) -> None:
        self.enabled = False
        self._stream: TextIO | None = None
        self._path: str | None = None
        self._owns_stream = False
        self._lock = threading.Lock()
        self._local = threading.local()
        self._qid_lock = threading.Lock()
        self._next_qid = 1

    # ----------------------------------------------------------- lifecycle

    def enable(self, target: str | TextIO = "stderr") -> None:
        """Start logging to ``target``: a path, ``"stderr"``/``"stdout"``,
        or an open text stream (not closed on :meth:`disable`)."""
        self.disable()
        if target == "stderr":
            self._stream, self._owns_stream = sys.stderr, False
        elif target in ("stdout", "-"):
            self._stream, self._owns_stream = sys.stdout, False
        elif isinstance(target, str):
            self._stream = open(target, "a", encoding="utf-8")
            self._path = target
            self._owns_stream = True
        else:
            self._stream, self._owns_stream = target, False
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False
        stream, owns = self._stream, self._owns_stream
        self._stream = None
        self._path = None
        self._owns_stream = False
        if owns and stream is not None:
            try:
                stream.close()
            except OSError:  # pragma: no cover - best-effort close
                pass

    @property
    def path(self) -> str | None:
        """The log file path, when logging to a file."""
        return self._path

    # --------------------------------------------------------- correlation

    def current_query_id(self) -> int | None:
        """The query id of the innermost open :meth:`query_scope`."""
        return getattr(self._local, "qid", None)

    @contextmanager
    def query_scope(self) -> Iterator[int | None]:
        """Correlate everything inside with one query id.

        The outermost scope on a thread allocates a fresh id; nested
        scopes (a ``Sort`` inside a ``Query``, a ``modify`` inside a
        ``Sort``) reuse it, so one logical query logs one ``qid``.
        Cheap no-op while the logger (and the slow-query log, which
        shares the ids) is disabled.
        """
        from .slowlog import SLOWLOG

        if not (self.enabled or SLOWLOG.enabled):
            yield None
            return
        existing = getattr(self._local, "qid", None)
        if existing is not None:
            yield existing
            return
        with self._qid_lock:
            qid = self._next_qid
            self._next_qid += 1
        self._local.qid = qid
        try:
            yield qid
        finally:
            self._local.qid = None

    # ------------------------------------------------------------ emission

    def event(self, event: str, **fields: Any) -> None:
        """Emit one structured event (no-op while disabled).

        ``fields`` become top-level JSON keys; non-JSON values are
        stringified rather than refused, because a log line that drops
        is worse than a log line that stringifies.
        """
        if not self.enabled:
            return
        record: dict[str, Any] = {
            "ts": round(time.time(), 6),
            "event": event,
            "pid": os.getpid(),
        }
        qid = getattr(self._local, "qid", None)
        if qid is not None:
            record["qid"] = qid
        if TRACER.enabled:
            current = TRACER._current
            if current is not None:
                record["span"] = current.sid
                record["span_name"] = current.name
        record.update(fields)
        try:
            line = json.dumps(record, default=str)
        except (TypeError, ValueError):  # pragma: no cover - paranoid
            line = json.dumps({"ts": record["ts"], "event": event,
                               "pid": record["pid"], "malformed": True})
        stream = self._stream
        if stream is None:
            return
        with self._lock:
            try:
                stream.write(line + "\n")
                stream.flush()
            except (OSError, ValueError):
                # A closed or broken sink must never take a query down.
                self.enabled = False
                return
        if METRICS.enabled:
            METRICS.counter("log.events").inc()


def read_log(path: str) -> list[dict]:
    """Load a JSON-lines log file back as a list of event dicts."""
    events: list[dict] = []
    with io.open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


#: The process-wide structured logger.  ``REPRO_LOG=PATH`` (or
#: ``stderr``/``stdout``) enables it at import, like ``REPRO_TRACE``.
LOG = StructuredLogger()
if os.environ.get("REPRO_LOG", "") not in ("", "0"):
    LOG.enable(os.environ["REPRO_LOG"])
