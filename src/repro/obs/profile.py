"""Sampling profiler with collapsed-stack (flamegraph) export.

Deterministic tracing answers *which phase* was slow; a statistical
profiler answers *which code* inside the phase.  This one needs no
dependencies: a sampler interrupts the process every
``interval_s`` seconds, walks the Python stack(s) via
``sys._current_frames()``, and counts identical stacks.  The output is
the collapsed-stack format every flamegraph tool eats directly::

    repro.sorting.tournament:tournament_sort;repro.ovc.compare:compare 412

    $ python -m repro bench --log2-rows 14 --profile /tmp/bench.folded
    $ flamegraph.pl /tmp/bench.folded > bench.svg

Two timers:

* ``mode="thread"`` (default) — a daemon thread samples the *other*
  threads; works everywhere (any thread, any platform, workers too)
  and observes wall-clock time, so blocking I/O and lock waits show up.
* ``mode="signal"`` — ``signal.setitimer(ITIMER_PROF)`` + ``SIGPROF``
  samples on *CPU* time; main-thread-only and POSIX-only, but immune
  to wall-clock skew from sleeps.

Sampling cost is one stack walk per tick — at the default 5 ms
interval that is a few hundred walks per second of profiled work,
invisible next to the work itself.  The profiler is a plain object,
not a singleton: profile exactly what you wrap (the ``--profile FILE``
CLI flag wraps one experiment run).
"""

from __future__ import annotations

import signal
import sys
import threading
from collections import Counter
from typing import Any

from .metrics import METRICS

#: Default wall-clock sampling interval: 5 ms == 200 Hz.
DEFAULT_INTERVAL_S = 0.005

#: Deepest stack recorded per sample (frames beyond are dropped from
#: the *root* end, keeping the hot leaves).
MAX_DEPTH = 128


def _frame_label(frame: Any) -> str:
    """``module:function`` — stable across runs, short enough to read."""
    mod = frame.f_globals.get("__name__", "?")
    name = frame.f_code.co_name
    # The collapsed format reserves ';' (stack separator) and ' '
    # (count separator); scrub them defensively.
    return f"{mod}:{name}".replace(";", ",").replace(" ", "_")


def _collapse(frame: Any) -> tuple[str, ...]:
    """Walk a leaf frame to the root; return root-first labels."""
    stack: list[str] = []
    while frame is not None and len(stack) < MAX_DEPTH:
        stack.append(_frame_label(frame))
        frame = frame.f_back
    stack.reverse()
    return tuple(stack)


class SamplingProfiler:
    """Collect collapsed stack samples from a running process.

    Use as a context manager or via :meth:`start` / :meth:`stop`::

        prof = SamplingProfiler(interval_s=0.002)
        with prof:
            run_workload()
        prof.write_collapsed("profile.folded")

    ``all_threads`` (thread mode only) samples every live thread
    instead of just the one that called :meth:`start`.
    """

    def __init__(
        self,
        interval_s: float = DEFAULT_INTERVAL_S,
        mode: str = "thread",
        all_threads: bool = False,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        if mode not in ("thread", "signal"):
            raise ValueError(f"mode must be 'thread' or 'signal', got {mode!r}")
        self.interval_s = interval_s
        self.mode = mode
        self.all_threads = all_threads
        self.counts: Counter[tuple[str, ...]] = Counter()
        self.n_samples = 0
        self._running = False
        self._stop_event = threading.Event()
        self._sampler: threading.Thread | None = None
        self._target_ident: int | None = None
        self._previous_handler: Any = None

    # ----------------------------------------------------------- lifecycle

    def start(self) -> "SamplingProfiler":
        if self._running:
            return self
        self.counts.clear()
        self.n_samples = 0
        if self.mode == "signal":
            if threading.current_thread() is not threading.main_thread():
                raise ValueError(
                    "signal-mode profiling must start on the main thread"
                )
            self._previous_handler = signal.signal(
                signal.SIGPROF, self._on_signal
            )
            signal.setitimer(
                signal.ITIMER_PROF, self.interval_s, self.interval_s
            )
        else:
            self._target_ident = threading.get_ident()
            self._stop_event.clear()
            self._sampler = threading.Thread(
                target=self._sample_loop, name="repro-profiler", daemon=True
            )
            self._sampler.start()
        self._running = True
        return self

    def stop(self) -> "SamplingProfiler":
        if not self._running:
            return self
        self._running = False
        if self.mode == "signal":
            signal.setitimer(signal.ITIMER_PROF, 0.0)
            signal.signal(signal.SIGPROF, self._previous_handler or signal.SIG_DFL)
            self._previous_handler = None
        else:
            self._stop_event.set()
            if self._sampler is not None:
                self._sampler.join(timeout=5)
                self._sampler = None
        if METRICS.enabled:
            METRICS.counter("profile.samples").inc(self.n_samples)
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc: object) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------ sampling

    def _sample_loop(self) -> None:
        me = threading.get_ident()
        while not self._stop_event.wait(self.interval_s):
            frames = sys._current_frames()
            if self.all_threads:
                targets = [
                    (ident, frame)
                    for ident, frame in frames.items()
                    if ident != me
                ]
            else:
                frame = frames.get(self._target_ident)
                targets = [(self._target_ident, frame)] if frame is not None else []
            for _ident, frame in targets:
                self.counts[_collapse(frame)] += 1
                self.n_samples += 1

    def _on_signal(self, _signum: int, frame: Any) -> None:
        if frame is not None:
            self.counts[_collapse(frame)] += 1
            self.n_samples += 1

    # -------------------------------------------------------------- export

    def collapsed(self) -> str:
        """The samples in collapsed-stack format, hottest stacks first."""
        lines = [
            ";".join(stack) + f" {count}"
            for stack, count in sorted(
                self.counts.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_collapsed(self, path: str) -> int:
        """Write :meth:`collapsed` output to ``path``; returns sample count."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.collapsed())
        return self.n_samples

    def top(self, n: int = 10) -> list[tuple[str, int]]:
        """The ``n`` hottest *leaf* functions by inclusive sample count."""
        leaves: Counter[str] = Counter()
        for stack, count in self.counts.items():
            if stack:
                leaves[stack[-1]] += count
        return leaves.most_common(n)


def read_collapsed(path: str) -> dict[tuple[str, ...], int]:
    """Parse a collapsed-stack file back into ``{stack: count}``."""
    out: dict[tuple[str, ...], int] = {}
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            stack_text, _, count = line.rpartition(" ")
            out[tuple(stack_text.split(";"))] = int(count)
    return out
