"""Shard execution inside worker processes (spawn-safe).

Everything a worker needs is bundled into one picklable
:class:`ShardContext` shipped at pool startup; per-shard traffic is
just ``(index, rows, ovcs)`` in and chunked ``(rows, ovcs)`` batches
out.  All functions here are module-level so the ``spawn`` start method
(which re-imports this module in the child) works as well as ``fork``.

A worker executes its shard exactly like the serial engine executes the
same rows: the fast packed-code kernels when the caller's engine choice
allows them (falling back to the instrumented reference executors on
non-packable key values), the reference executors otherwise.  Because a
shard covers whole segments and no comparison ever crosses a segment
boundary, the concatenated shard outputs are bit-identical — rows *and*
codes — to a serial run.

Fault tolerance: each task carries a 0-based ``attempt`` number (the
driver counts retries), the worker announces ``("start", shard,
attempt, pid)`` before executing — that is how the driver learns which
process owns which shard, arming its timeout and crash detection — and
every result message echoes the attempt so the driver can discard
stragglers from abandoned attempts.  Deterministic fault injection
(:mod:`repro.exec.faults`) hooks in right around shard execution; the
fault plan rides inside the picklable :class:`ShardContext`, so it
reaches ``spawn`` workers as reliably as ``fork`` ones.
"""

from __future__ import annotations

import os
import traceback
from dataclasses import dataclass, field

from ..core.analysis import ModificationPlan, Strategy
from ..core.classify import split_segments
from ..core.merge_runs import merge_preexisting_runs
from ..core.segmented import sort_segment
from ..exec.faults import Fault, corrupt_output, fire
from ..model import Schema, SortSpec, Table
from ..ovc.stats import ComparisonStats
from ..sorting.merge import _key_projector


@dataclass(frozen=True)
class ShardContext:
    """Static state shared by every shard of one parallel job."""

    schema: Schema
    input_spec: SortSpec
    output_spec: SortSpec
    plan: ModificationPlan
    strategy: Strategy
    #: Try the packed-code kernels first (reference on TypeError).
    use_fast: bool
    #: Ship per-shard comparison counters back for merging.
    collect_stats: bool
    max_fan_in: int | None = None
    #: Record spans in the worker and ship them on the final chunk.
    trace: bool = False
    #: Record worker-side metrics and ship them on the final chunk.
    collect_metrics: bool = False
    #: Deterministic fault plan (:mod:`repro.exec.faults`), consulted
    #: only here in the worker — quarantined shards re-executed in the
    #: driver bypass it by construction.
    faults: tuple[Fault, ...] = field(default=())


def execute_shard(
    rows: list[tuple],
    ovcs: list[tuple],
    ctx: ShardContext,
) -> tuple[list[tuple], list[tuple], dict[str, int] | None]:
    """Run one shard; returns ``(out_rows, out_ovcs, stats_counters)``.

    ``stats_counters`` is ``None`` unless ``ctx.collect_stats`` — the
    fast kernels count nothing, so counters are only meaningful on the
    reference path.
    """
    stats = ComparisonStats()
    if ctx.use_fast:
        from ..fastpath.execute import fast_modify

        try:
            table = Table(ctx.schema, rows, ctx.input_spec, ovcs)
            result = fast_modify(table, ctx.output_spec, ctx.plan, ctx.strategy)
            counters = stats.as_dict() if ctx.collect_stats else None
            return result.rows, result.ovcs, counters
        except TypeError:
            pass  # non-packable key values: reference fallback below

    out_project = _key_projector(
        ctx.output_spec.positions(ctx.schema), ctx.output_spec.directions
    )
    p = ctx.plan.prefix_len
    out_rows: list[tuple] = []
    out_ovcs: list[tuple] = []
    if ctx.strategy is Strategy.SEGMENT_SORT:
        for lo, hi in split_segments(ovcs, p, len(rows)):
            sort_segment(
                rows, ovcs, lo, hi, p, ctx.output_spec.arity, out_project,
                stats, out_rows, out_ovcs, use_ovc=True,
            )
    elif ctx.strategy is Strategy.COMBINED:
        in_project = _key_projector(
            ctx.input_spec.positions(ctx.schema), ctx.input_spec.directions
        )
        for lo, hi in split_segments(ovcs, p, len(rows)):
            merge_preexisting_runs(
                rows, ovcs, lo, hi, ctx.plan, out_project, in_project,
                stats, out_rows, out_ovcs, use_ovc=True,
                respect_prefix=True, max_fan_in=ctx.max_fan_in,
            )
    else:  # pragma: no cover - the planner only shards the above
        raise ValueError(f"strategy {ctx.strategy} is not shardable")
    counters = stats.as_dict() if ctx.collect_stats else None
    return out_rows, out_ovcs, counters


def worker_main(ctx, tasks, results, chunk_rows: int) -> None:
    """Worker process loop: pull shards, push chunked results.

    Tasks are ``(index, attempt, rows, ovcs)``; a ``None`` task is the
    shutdown signal.  The worker announces ``("start", index, attempt,
    pid)`` before executing, then ships ``("chunk", index, attempt,
    seq, rows, ovcs, last, counters, telemetry)`` messages — output in
    batches of ``chunk_rows`` rows to bound per-message pickle size —
    or ``("error", index, attempt, traceback)``.  The per-shard
    counters and the telemetry (``{"pid", "shard", "spans",
    "metrics"}``, recorded while ``ctx.trace`` /
    ``ctx.collect_metrics``) ride on the final chunk only; every
    shipped span is tagged with the worker pid and shard index so the
    collector can stitch one cross-process timeline.

    Injected faults (``ctx.faults``) fire between the start
    announcement and execution: ``kill`` exits the process, ``hang``
    sleeps past any sane timeout, ``error`` raises (the ordinary remote
    traceback path), and ``corrupt`` silently truncates the finished
    output — which the driver's row-count validation must catch.
    """
    from ..obs import METRICS, TRACER

    # A forked worker inherits the parent's tracer/registry state;
    # start from a clean slate either way so nothing ships twice.
    if ctx.trace:
        TRACER.enable(clear=True)
    else:
        TRACER.disable()
        TRACER.reset()
    if ctx.collect_metrics:
        METRICS.enable(clear=True)
    else:
        METRICS.disable()
        METRICS.reset()
    pid = os.getpid()

    while True:
        task = tasks.get()
        if task is None:
            break
        index, attempt, rows, ovcs = task
        results.put(("start", index, attempt, pid))
        try:
            corrupting = fire(ctx.faults, index, attempt)
            with TRACER.span("shard.execute", rows=len(rows)):
                out_rows, out_ovcs, counters = execute_shard(rows, ovcs, ctx)
            if corrupting is not None:
                out_rows, out_ovcs = corrupt_output(out_rows, out_ovcs)
        except BaseException:
            results.put(("error", index, attempt, traceback.format_exc()))
            TRACER.reset()
            METRICS.reset()
            continue
        telemetry = None
        if ctx.trace or ctx.collect_metrics:
            spans = TRACER.drain() if ctx.trace else []
            for record in spans:
                tags = record.setdefault("tags", {})
                tags["worker"] = pid
                tags["shard"] = index
            metrics = METRICS.as_dict() if ctx.collect_metrics else None
            METRICS.reset()  # each shard ships its own delta exactly once
            telemetry = {
                "pid": pid,
                "shard": index,
                "spans": spans,
                "metrics": metrics,
            }
        n = len(out_rows)
        n_chunks = max(1, -(-n // chunk_rows))
        for seq in range(n_chunks):
            lo = seq * chunk_rows
            hi = min(n, lo + chunk_rows)
            last = seq == n_chunks - 1
            results.put(
                (
                    "chunk",
                    index,
                    attempt,
                    seq,
                    out_rows[lo:hi],
                    out_ovcs[lo:hi],
                    last,
                    counters if last else None,
                    telemetry if last else None,
                )
            )
