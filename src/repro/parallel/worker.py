"""Shard execution inside worker processes (spawn-safe).

Everything a worker needs is bundled into one picklable
:class:`ShardContext` shipped at pool startup; per-shard traffic is
just ``(index, rows, ovcs)`` in and chunked ``(rows, ovcs)`` batches
out.  All functions here are module-level so the ``spawn`` start method
(which re-imports this module in the child) works as well as ``fork``.

A worker executes its shard exactly like the serial engine executes the
same rows: the fast packed-code kernels when the caller's engine choice
allows them (falling back to the instrumented reference executors on
non-packable key values), the reference executors otherwise.  Because a
shard covers whole segments and no comparison ever crosses a segment
boundary, the concatenated shard outputs are bit-identical — rows *and*
codes — to a serial run.

Fault tolerance: each task carries a 0-based ``attempt`` number (the
driver counts retries), the worker announces ``("start", shard,
attempt, pid)`` before executing — that is how the driver learns which
process owns which shard, arming its timeout and crash detection — and
every result message echoes the attempt so the driver can discard
stragglers from abandoned attempts.  Deterministic fault injection
(:mod:`repro.exec.faults`) hooks in right around shard execution; the
fault plan rides inside the picklable :class:`ShardContext`, so it
reaches ``spawn`` workers as reliably as ``fork`` ones.
"""

from __future__ import annotations

import os
import time
import traceback
from array import array
from dataclasses import dataclass, field

from ..core.analysis import ModificationPlan, Strategy
from ..core.classify import split_segments
from ..core.merge_runs import merge_preexisting_runs
from ..core.segmented import sort_segment
from ..exec.faults import Fault, corrupt_output, fire
from ..model import Schema, SortSpec, Table
from ..ovc.stats import ComparisonStats
from ..sorting.merge import _key_projector

#: Fork-inherited data-plane input: ``(rows, ovcs, PlaneBuffers)``.
#: The driver publishes it immediately before forking the pool; plane
#: workers read it instead of receiving payloads over the task queue.
#: Meaningless (and unset) under the ``spawn`` start method — the
#: executor only selects the plane when it forks.
_PLANE_INPUT = None


def set_plane_input(rows, ovcs, buffers) -> None:
    global _PLANE_INPUT
    _PLANE_INPUT = (rows, ovcs, buffers)


def clear_plane_input() -> None:
    global _PLANE_INPUT
    _PLANE_INPUT = None


@dataclass(frozen=True)
class ShardContext:
    """Static state shared by every shard of one parallel job."""

    schema: Schema
    input_spec: SortSpec
    output_spec: SortSpec
    plan: ModificationPlan
    strategy: Strategy
    #: Try the packed-code kernels first (reference on TypeError).
    use_fast: bool
    #: Ship per-shard comparison counters back for merging.
    collect_stats: bool
    max_fan_in: int | None = None
    #: Record spans in the worker and ship them on the final chunk.
    trace: bool = False
    #: Record worker-side metrics and ship them on the final chunk.
    collect_metrics: bool = False
    #: Deterministic fault plan (:mod:`repro.exec.faults`), consulted
    #: only here in the worker — quarantined shards re-executed in the
    #: driver bypass it by construction.
    faults: tuple[Fault, ...] = field(default=())


def execute_shard(
    rows: list[tuple],
    ovcs: list[tuple],
    ctx: ShardContext,
) -> tuple[list[tuple], list[tuple], dict[str, int] | None]:
    """Run one shard; returns ``(out_rows, out_ovcs, stats_counters)``.

    ``stats_counters`` is ``None`` unless ``ctx.collect_stats`` — the
    fast kernels count nothing, so counters are only meaningful on the
    reference path.
    """
    stats = ComparisonStats()
    if ctx.use_fast:
        from ..fastpath.execute import fast_modify

        try:
            table = Table(ctx.schema, rows, ctx.input_spec, ovcs)
            result = fast_modify(table, ctx.output_spec, ctx.plan, ctx.strategy)
            counters = stats.as_dict() if ctx.collect_stats else None
            return result.rows, result.ovcs, counters
        except TypeError:
            pass  # non-packable key values: reference fallback below

    out_project = _key_projector(
        ctx.output_spec.positions(ctx.schema), ctx.output_spec.directions
    )
    p = ctx.plan.prefix_len
    out_rows: list[tuple] = []
    out_ovcs: list[tuple] = []
    if ctx.strategy is Strategy.SEGMENT_SORT:
        for lo, hi in split_segments(ovcs, p, len(rows)):
            sort_segment(
                rows, ovcs, lo, hi, p, ctx.output_spec.arity, out_project,
                stats, out_rows, out_ovcs, use_ovc=True,
            )
    elif ctx.strategy is Strategy.COMBINED:
        in_project = _key_projector(
            ctx.input_spec.positions(ctx.schema), ctx.input_spec.directions
        )
        for lo, hi in split_segments(ovcs, p, len(rows)):
            merge_preexisting_runs(
                rows, ovcs, lo, hi, ctx.plan, out_project, in_project,
                stats, out_rows, out_ovcs, use_ovc=True,
                respect_prefix=True, max_fan_in=ctx.max_fan_in,
            )
    else:  # pragma: no cover - the planner only shards the above
        raise ValueError(f"strategy {ctx.strategy} is not shardable")
    counters = stats.as_dict() if ctx.collect_stats else None
    return out_rows, out_ovcs, counters


def execute_shard_perm(
    rows: list[tuple],
    ovcs: list[tuple],
    lo: int,
    hi: int,
    ctx: ShardContext,
) -> tuple[list[int], list[tuple], dict[str, int] | None]:
    """Run rows ``[lo, hi)``; return ``(perm, out_ovcs, counters)``.

    ``perm`` is shard-local: ``perm[i]`` indexes into ``rows[lo:hi]``
    (the caller rebases by ``lo`` when writing global buffers).  The
    fast kernels emit the permutation natively; the reference fallback
    (non-packable key values) recovers it by object identity — every
    output row *is* an input row object, so ``id`` maps it back to its
    slot without comparing values.
    """
    sl_rows = rows[lo:hi]
    sl_ovcs = ovcs[lo:hi]
    if ctx.use_fast:
        from ..fastpath.execute import fast_modify_perm

        try:
            perm, out_ovcs = fast_modify_perm(
                ctx.schema, sl_rows, sl_ovcs, ctx.output_spec, ctx.plan,
                ctx.strategy,
            )
            counters = ComparisonStats().as_dict() if ctx.collect_stats else None
            return perm, out_ovcs, counters
        except TypeError:
            pass  # non-packable key values: reference fallback below
    out_rows, out_ovcs, counters = execute_shard(sl_rows, sl_ovcs, ctx)
    index_of = {id(row): i for i, row in enumerate(sl_rows)}
    perm = [index_of[id(row)] for row in out_rows]
    return perm, out_ovcs, counters


def plane_worker_main(ctx, tasks, results, chunk_rows: int) -> None:
    """Data-plane worker loop: inherited input, flat-buffer output.

    Tasks are ``(index, attempt, lo, hi)`` row ranges into the
    fork-inherited input (``set_plane_input``); a ``None`` task is the
    shutdown signal.  Results are written into the inherited
    :class:`~repro.parallel.shm.PlaneBuffers` at the same global
    offsets and announced with ``("planechunk", index, attempt, seq,
    start, stop, crc, last, counters, telemetry, timings)`` descriptors
    — only these few words cross the queue.  Codes whose values do not
    fit a machine word fall back to the legacy pickled ``("chunk",
    ...)`` messages for that shard (rows materialized from the
    permutation), so exotic key types keep exact fidelity.

    Faults fire exactly as on the legacy path; ``corrupt`` truncates
    the permutation and codes, which the driver's row-count validation
    catches.
    """
    from ..fastpath.packed import pack_codes
    from ..obs import METRICS, TRACER

    if ctx.trace:
        TRACER.enable(clear=True)
    else:
        TRACER.disable()
        TRACER.reset()
    if ctx.collect_metrics:
        METRICS.enable(clear=True)
    else:
        METRICS.disable()
        METRICS.reset()
    pid = os.getpid()
    rows, ovcs, buffers = _PLANE_INPUT

    while True:
        task = tasks.get()
        if task is None:
            break
        index, attempt, lo, hi = task
        results.put(("start", index, attempt, pid))
        try:
            corrupting = fire(ctx.faults, index, attempt)
            t0 = time.perf_counter()
            with TRACER.span("shard.execute", rows=hi - lo):
                perm, out_ovcs, counters = execute_shard_perm(
                    rows, ovcs, lo, hi, ctx
                )
            compute_s = time.perf_counter() - t0
            if corrupting is not None:
                perm, out_ovcs = corrupt_output(perm, out_ovcs)
        except BaseException:
            results.put(("error", index, attempt, traceback.format_exc()))
            TRACER.reset()
            METRICS.reset()
            continue
        telemetry = _drain_telemetry(ctx, pid, index)

        t0 = time.perf_counter()
        try:
            off_arr, val_arr = pack_codes(out_ovcs)
        except (TypeError, OverflowError):
            # Code values beyond machine words: pickled-chunk fallback,
            # materializing this shard's rows from the permutation.
            out_rows = [rows[lo + i] for i in perm]
            timings = {
                "compute_s": compute_s,
                "pack_s": time.perf_counter() - t0,
            }
            _ship_chunks(
                results, index, attempt, out_rows, out_ovcs, chunk_rows,
                counters, telemetry, timings,
            )
            continue
        perm_arr = array("q", map(lo.__add__, perm))
        pack_s = time.perf_counter() - t0

        n = len(perm_arr)
        n_chunks = max(1, -(-n // chunk_rows))
        for seq in range(n_chunks):
            a = seq * chunk_rows
            b = min(n, a + chunk_rows)
            last = seq == n_chunks - 1
            t0 = time.perf_counter()
            crc = buffers.write(lo + a, lo + b, perm_arr, off_arr, val_arr, lo)
            pack_s += time.perf_counter() - t0
            results.put(
                (
                    "planechunk",
                    index,
                    attempt,
                    seq,
                    lo + a,
                    lo + b,
                    crc,
                    last,
                    counters if last else None,
                    telemetry if last else None,
                    {"compute_s": compute_s, "pack_s": pack_s} if last else None,
                )
            )


def _drain_telemetry(ctx, pid: int, index: int) -> dict | None:
    """Collect and reset this shard's spans/metrics (if enabled)."""
    from ..obs import METRICS, TRACER

    if not (ctx.trace or ctx.collect_metrics):
        return None
    spans = TRACER.drain() if ctx.trace else []
    for record in spans:
        tags = record.setdefault("tags", {})
        tags["worker"] = pid
        tags["shard"] = index
    metrics = METRICS.as_dict() if ctx.collect_metrics else None
    METRICS.reset()  # each shard ships its own delta exactly once
    return {"pid": pid, "shard": index, "spans": spans, "metrics": metrics}


def _ship_chunks(
    results, index, attempt, out_rows, out_ovcs, chunk_rows,
    counters, telemetry, timings,
) -> None:
    """Ship one shard's output as legacy pickled ``("chunk", ...)``s."""
    n = len(out_rows)
    n_chunks = max(1, -(-n // chunk_rows))
    for seq in range(n_chunks):
        lo = seq * chunk_rows
        hi = min(n, lo + chunk_rows)
        last = seq == n_chunks - 1
        results.put(
            (
                "chunk",
                index,
                attempt,
                seq,
                out_rows[lo:hi],
                out_ovcs[lo:hi],
                last,
                counters if last else None,
                telemetry if last else None,
                timings if last else None,
            )
        )


def worker_main(ctx, tasks, results, chunk_rows: int) -> None:
    """Worker process loop: pull shards, push chunked results.

    Tasks are ``(index, attempt, rows, ovcs)``; a ``None`` task is the
    shutdown signal.  The worker announces ``("start", index, attempt,
    pid)`` before executing, then ships ``("chunk", index, attempt,
    seq, rows, ovcs, last, counters, telemetry, timings)`` messages —
    output in batches of ``chunk_rows`` rows to bound per-message
    pickle size — or ``("error", index, attempt, traceback)``.  The
    per-shard counters, the telemetry (``{"pid", "shard", "spans",
    "metrics"}``, recorded while ``ctx.trace`` /
    ``ctx.collect_metrics``) and the phase timings (``{"compute_s",
    "pack_s"}``) ride on the final chunk only; every
    shipped span is tagged with the worker pid and shard index so the
    collector can stitch one cross-process timeline.

    Injected faults (``ctx.faults``) fire between the start
    announcement and execution: ``kill`` exits the process, ``hang``
    sleeps past any sane timeout, ``error`` raises (the ordinary remote
    traceback path), and ``corrupt`` silently truncates the finished
    output — which the driver's row-count validation must catch.
    """
    from ..obs import METRICS, TRACER

    # A forked worker inherits the parent's tracer/registry state;
    # start from a clean slate either way so nothing ships twice.
    if ctx.trace:
        TRACER.enable(clear=True)
    else:
        TRACER.disable()
        TRACER.reset()
    if ctx.collect_metrics:
        METRICS.enable(clear=True)
    else:
        METRICS.disable()
        METRICS.reset()
    pid = os.getpid()

    while True:
        task = tasks.get()
        if task is None:
            break
        index, attempt, rows, ovcs = task
        results.put(("start", index, attempt, pid))
        try:
            corrupting = fire(ctx.faults, index, attempt)
            t0 = time.perf_counter()
            with TRACER.span("shard.execute", rows=len(rows)):
                out_rows, out_ovcs, counters = execute_shard(rows, ovcs, ctx)
            compute_s = time.perf_counter() - t0
            if corrupting is not None:
                out_rows, out_ovcs = corrupt_output(out_rows, out_ovcs)
        except BaseException:
            results.put(("error", index, attempt, traceback.format_exc()))
            TRACER.reset()
            METRICS.reset()
            continue
        telemetry = _drain_telemetry(ctx, pid, index)
        _ship_chunks(
            results, index, attempt, out_rows, out_ovcs, chunk_rows,
            counters, telemetry, {"compute_s": compute_s, "pack_s": 0.0},
        )
