"""Ordered streaming collector: out-of-order shard chunks -> global order.

Workers finish shards in whatever order the scheduler grants them, and
each shard arrives as a sequence of chunked row batches.  The collector
re-establishes the global output order — shard index, then chunk
sequence within the shard — and releases chunks downstream the moment
they are next in line, so consumers stream instead of waiting for the
whole job.

Chunks that arrive ahead of their turn are buffered;
:attr:`OrderedCollector.peak_buffered_rows` records the high-water
mark.  The buffer is bounded in practice by the executor's in-flight
shard cap (its backpressure mechanism): at most ``max_inflight - 1``
shards' outputs can ever be queued ahead of the emission frontier.

Per-shard comparison counters (reference-path shards ship them on their
final chunk) are merged into :attr:`OrderedCollector.stats`.  Per-shard
telemetry — spans and metric snapshots recorded inside the worker,
tagged with worker pid and shard index — is accumulated in
:attr:`OrderedCollector.telemetry` keyed by shard, so
:meth:`OrderedCollector.telemetry_in_shard_order` can stitch the
workers' timelines back together in output order regardless of the
order shards finished in.
"""

from __future__ import annotations

from ..exec import memory
from ..obs import LOG
from ..ovc.stats import ComparisonStats
from .shm import PlaneSlice

Chunk = tuple[list[tuple], list[tuple]]


def _chunk_nbytes(rows, ovcs) -> int:
    """Accounting size of one buffered chunk.

    A data-plane chunk is a :class:`PlaneSlice` descriptor — a fixed
    few words, not row storage (the rows live in shared memory until
    materialization).
    """
    if isinstance(rows, PlaneSlice):
        return PlaneSlice.NBYTES
    return memory.rows_nbytes(rows, ovcs)


def _emit(rows, ovcs) -> Chunk:
    """Resolve a chunk for downstream consumption.

    Plane slices materialize here — at the emission frontier, in global
    order — so rows are copied exactly once and never buffered.
    """
    if isinstance(rows, PlaneSlice):
        return rows.materialize()
    return rows, ovcs


class ShardError(RuntimeError):
    """A worker failed while executing a shard."""

    def __init__(self, shard: int, tb: str) -> None:
        super().__init__(f"shard {shard} failed in worker:\n{tb}")
        self.shard = shard


class OrderedCollector:
    """Reorders worker result messages into global output order."""

    def __init__(self) -> None:
        self._next_shard = 0
        self._next_seq = 0
        #: shard -> {seq: (rows, ovcs)} buffered ahead of their turn.
        self._buffered: dict[int, dict[int, Chunk]] = {}
        #: shard -> seq of its final chunk (known once that chunk lands).
        self._last_seq: dict[int, int] = {}
        self.stats = ComparisonStats()
        #: shard -> telemetry dict shipped with that shard's final chunk.
        self.telemetry: dict[int, dict] = {}
        #: Shards whose final chunk has arrived (in buffer or emitted).
        self.received_shards = 0
        #: Shards fully released downstream.
        self.emitted_shards = 0
        self.buffered_rows = 0
        self.peak_buffered_rows = 0

    def add(self, message: tuple) -> list[Chunk]:
        """Feed one worker message; return chunks now ready, in order."""
        kind = message[0]
        if kind == "error":
            _, shard, tb = message
            if LOG.enabled:
                LOG.event(
                    "pool.shard_error",
                    shard=shard,
                    reason=tb.splitlines()[-1][:200] if tb else None,
                )
            raise ShardError(shard, tb)
        _, shard, seq, rows, ovcs, last, counters, telemetry = message
        if counters is not None:
            self.stats.merge(ComparisonStats(**counters))
        if telemetry is not None:
            self.telemetry[shard] = telemetry
        if last:
            self._last_seq[shard] = seq
            self.received_shards += 1

        if shard != self._next_shard or seq != self._next_seq:
            self._buffered.setdefault(shard, {})[seq] = (rows, ovcs)
            self.buffered_rows += len(rows)
            self.peak_buffered_rows = max(
                self.peak_buffered_rows, self.buffered_rows
            )
            accountant = memory.current()
            if accountant is not None:
                accountant.charge("pool.reorder", _chunk_nbytes(rows, ovcs))
            return []

        ready: list[Chunk] = [_emit(rows, ovcs)]
        self._advance(seq, last)
        self._drain(ready)
        return ready

    def _advance(self, seq: int, last: bool) -> None:
        if last:
            self.emitted_shards += 1
            self._next_shard += 1
            self._next_seq = 0
        else:
            self._next_seq = seq + 1

    def _drain(self, ready: list[Chunk]) -> None:
        """Release any buffered chunks that are now next in line."""
        while True:
            chunks = self._buffered.get(self._next_shard)
            if not chunks or self._next_seq not in chunks:
                return
            rows, ovcs = chunks.pop(self._next_seq)
            if not chunks:
                del self._buffered[self._next_shard]
            self.buffered_rows -= len(rows)
            accountant = memory.current()
            if accountant is not None:
                accountant.release("pool.reorder", _chunk_nbytes(rows, ovcs))
            ready.append(_emit(rows, ovcs))
            last = self._last_seq.get(self._next_shard) == self._next_seq
            self._advance(self._next_seq, last)

    def telemetry_in_shard_order(self) -> list[tuple[int, dict]]:
        """Shipped per-shard telemetry, sorted by shard index.

        Shard index order is global output order, so stitching span
        records in this order reconstructs the job's timeline.
        """
        return sorted(self.telemetry.items())

    def pending(self) -> bool:
        """True while buffered chunks or unfinished shards remain."""
        return bool(self._buffered) or self.emitted_shards < self.received_shards
