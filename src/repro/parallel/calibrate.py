"""Per-host calibration: measured constants behind dispatch decisions.

The planner's serial-vs-parallel threshold and the pool's chunk size
used to be magic numbers (``MIN_PARALLEL_ROWS = 8192``,
``DEFAULT_CHUNK_ROWS = 8192``) tuned on one machine.  This module
replaces them with a one-time per-host microbenchmark that measures the
three constants the dispatch decision actually depends on:

* ``kernel_ns_row`` — what one row costs in the serial fast kernels
  (the work parallelism would divide by the worker count);
* ``pickle_ns_row`` — what one row costs crossing the pool on the
  legacy pickled-chunk protocol, both directions;
* ``plane_ns_row`` — what one row costs on the shared-memory data
  plane (:mod:`repro.parallel.shm`): permutation/code array packing in
  the worker plus lazy materialization in the driver.

The result is cached as JSON under the spill directory (the system
temp dir by default), keyed by host and Python version, so the
microbenchmark runs once per host, not once per process.  The cached
payload records the full host profile (exact Python version and
``os.cpu_count()``); a profile mismatch at load — patch upgrade,
container resize, VM migration — invalidates the cache and
re-measures rather than reusing a stale break-even point.  Derived
defaults:

* :meth:`Calibration.min_parallel_rows` — the break-even input size
  for ``n`` workers: the row count where the per-row parallel win
  (``kernel_ns_row * (1 - 1/n)``) starts covering the per-row data
  plane cost plus pool startup.  Below it, ``workers="auto"`` stays
  serial.
* :meth:`Calibration.chunk_rows` — result-chunk granularity sized to
  ~4 ms of kernel work per chunk (clamped to a power of two), so
  streaming latency tracks compute speed instead of a constant.

Measured values are logged through :mod:`repro.obs` (gauges
``calibrate.*``) whenever the metrics registry is enabled.
"""

from __future__ import annotations

import json
import os
import pickle
import platform
import tempfile
import time
from array import array
from dataclasses import asdict, dataclass

from ..obs import METRICS, TRACER

#: Fallback constants, used when measurement is impossible (and as the
#: seed values the microbenchmark overwrites).  The startup charge is a
#: fixed estimate: fork + queue setup + first-task latency per worker.
DEFAULT_KERNEL_NS_ROW = 1200.0
DEFAULT_PICKLE_NS_ROW = 3000.0
DEFAULT_PLANE_NS_ROW = 400.0
STARTUP_S_PER_WORKER = 0.008

#: Target kernel time per result chunk (seconds) for chunk sizing.
_CHUNK_TARGET_S = 0.004

#: Rows in the calibration workload — large enough to amortize per-call
#: setup, small enough to finish in tens of milliseconds.
_SAMPLE_ROWS = 4096

_MEMO: "Calibration | None" = None


@dataclass(frozen=True)
class Calibration:
    """Measured per-host cost constants (nanoseconds per row)."""

    kernel_ns_row: float
    pickle_ns_row: float
    plane_ns_row: float
    startup_s: float = STARTUP_S_PER_WORKER
    source: str = "default"

    def min_parallel_rows(self, n_workers: int) -> int:
        """Break-even input size for ``n_workers`` (rows).

        Serial cost ``n * kernel`` meets parallel cost
        ``startup * workers + n * plane + n * kernel / workers`` at
        ``n = startup * workers / (kernel * (1 - 1/workers) - plane)``.
        A non-positive denominator means the data plane costs more per
        row than parallelism saves — parallel never wins, so the
        threshold is effectively infinite.
        """
        if n_workers < 2:
            return 1 << 62
        saved = self.kernel_ns_row * (1.0 - 1.0 / n_workers) - self.plane_ns_row
        if saved <= 0:
            return 1 << 62
        rows = (self.startup_s * n_workers * 1e9) / saved
        return max(4096, min(1 << 20, int(rows)))

    def chunk_rows(self) -> int:
        """Result-chunk rows worth ~4 ms of kernel time (power of two)."""
        rows = _CHUNK_TARGET_S * 1e9 / max(self.kernel_ns_row, 1.0)
        size = 1024
        while size * 2 <= rows and size < 65536:
            size *= 2
        return size


def _cache_path(spill_dir: str | None) -> str:
    host = platform.node() or "host"
    tag = "".join(ch if ch.isalnum() or ch in "-._" else "-" for ch in host)
    name = (
        f"repro-calibration-{tag}-py"
        f"{platform.python_version_tuple()[0]}.{platform.python_version_tuple()[1]}.json"
    )
    return os.path.join(spill_dir or tempfile.gettempdir(), name)


def _sample_table():
    """A small Figure 11 slice: the shape the parallel subsystem targets."""
    from ..workloads.generators import fig11_output_spec, fig11_table

    return fig11_table(_SAMPLE_ROWS, 64, seed=0), fig11_output_spec(8)


def _best(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure() -> Calibration:
    """Run the microbenchmark; returns measured constants."""
    from ..core.analysis import analyze_order_modification
    from ..fastpath.execute import fast_modify

    table, spec = _sample_table()
    n = len(table.rows)
    plan = analyze_order_modification(table.sort_spec, spec)

    kernel_s = _best(
        lambda: fast_modify(table, spec, plan, plan.strategy)
    )

    payload = (table.rows, table.ovcs)

    def pickle_round_trip():
        pickle.loads(pickle.dumps(payload, pickle.HIGHEST_PROTOCOL))

    # Both directions cross the queue, and the pipe roughly doubles the
    # raw (de)serialization cost — measured on the bench workloads.
    pickle_s = _best(pickle_round_trip) * 2.0 * 2.0

    perm = list(range(n))
    codes = table.ovcs

    def plane_round_trip():
        # Worker side: flat perm/offset/value arrays; driver side:
        # permutation materialization plus code re-zipping.
        perm_arr = array("q", perm)
        offs = array("q", [o for o, _ in codes])
        vals = array("q", [v for _, v in codes])
        rows = table.rows
        list(map(rows.__getitem__, perm_arr))
        list(zip(offs, vals))

    plane_s = _best(plane_round_trip)

    cal = Calibration(
        kernel_ns_row=max(1.0, kernel_s * 1e9 / n),
        pickle_ns_row=max(1.0, pickle_s * 1e9 / n),
        plane_ns_row=max(1.0, plane_s * 1e9 / n),
        startup_s=STARTUP_S_PER_WORKER,
        source="measured",
    )
    return cal


def _log(cal: Calibration) -> None:
    if METRICS.enabled:
        METRICS.gauge("calibrate.kernel_ns_row").set(cal.kernel_ns_row)
        METRICS.gauge("calibrate.pickle_ns_row").set(cal.pickle_ns_row)
        METRICS.gauge("calibrate.plane_ns_row").set(cal.plane_ns_row)
        METRICS.gauge("calibrate.min_parallel_rows_w2").set(
            cal.min_parallel_rows(2)
        )
        METRICS.gauge("calibrate.chunk_rows").set(cal.chunk_rows())


def get(spill_dir: str | None = None, refresh: bool = False) -> Calibration:
    """The host's calibration: memoized, disk-cached, else measured.

    The first call per host runs the microbenchmark (tens of
    milliseconds) and writes the JSON cache; later processes load it.
    ``refresh`` forces a re-measurement.  Failures never propagate —
    the documented default constants stand in.
    """
    global _MEMO
    if _MEMO is not None and not refresh:
        return _MEMO
    path = _cache_path(spill_dir)
    if not refresh:
        try:
            with open(path) as fh:
                raw = json.load(fh)
            # A cached break-even point only transfers between
            # identical host profiles: the filename pins hostname and
            # Python major.minor, but a patch upgrade or a changed
            # core count (container resize, VM migration) silently
            # shifts every measured constant — treat either as a
            # cache miss and re-measure.
            if raw.get("python") != platform.python_version():
                raise ValueError("calibration cached by another Python")
            if raw.get("cpu_count") != os.cpu_count():
                raise ValueError("calibration cached on another host shape")
            cal = Calibration(
                kernel_ns_row=float(raw["kernel_ns_row"]),
                pickle_ns_row=float(raw["pickle_ns_row"]),
                plane_ns_row=float(raw["plane_ns_row"]),
                startup_s=float(raw.get("startup_s", STARTUP_S_PER_WORKER)),
                source="cache",
            )
            _MEMO = cal
            _log(cal)
            return cal
        except (OSError, ValueError, KeyError, TypeError):
            pass
    try:
        with TRACER.span("calibrate.measure"):
            cal = measure()
    except Exception:  # pragma: no cover - measurement is best-effort
        cal = Calibration(
            DEFAULT_KERNEL_NS_ROW,
            DEFAULT_PICKLE_NS_ROW,
            DEFAULT_PLANE_NS_ROW,
        )
    else:
        try:
            payload = asdict(cal)
            payload["host"] = platform.node()
            payload["python"] = platform.python_version()
            payload["cpu_count"] = os.cpu_count()
            tmp = f"{path}.{os.getpid()}.tmp"
            with open(tmp, "w") as fh:
                json.dump(payload, fh, indent=2)
            os.replace(tmp, path)
        except OSError:  # pragma: no cover - cache dir not writable
            pass
    _MEMO = cal
    _log(cal)
    return cal


def reset_memo() -> None:
    """Drop the in-process memo (tests re-point the cache directory)."""
    global _MEMO
    _MEMO = None
