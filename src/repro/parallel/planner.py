"""Shard planner: segments -> roughly equal-cost contiguous shards.

The shared key prefix partitions the input into *independent* segments
(Section 3.1, Figure 3): no comparison ever crosses a segment boundary,
and the output is the concatenation of the per-segment outputs in
segment order.  That makes order modification embarrassingly parallel —
provided the work is split evenly.

The planner walks the segment boundaries (detected from old code
offsets alone, per hypothesis 2), prices each segment with the
Section 3.5 cost model (:mod:`repro.core.cost`), and greedily packs
*contiguous* runs of segments into shards whose estimated costs are
roughly equal.  Contiguity is load-bearing: it is what lets the ordered
collector re-emit shard outputs by simple concatenation in shard index
order, with no final merge.

Shards deliberately outnumber workers (:data:`SHARDS_PER_WORKER` per
worker) so that one expensive shard cannot serialize the pool: workers
that finish early pull the next shard from the queue.

A job is declared *serial* — ``ShardPlan.parallel`` is False and
``reason`` says why — when parallelism cannot pay: fewer than two
workers, fewer than two segments (including all ``prefix_len == 0``
plans), a strategy whose output is not a per-segment concatenation
(full sorts and whole-input run merges), or an input smaller than
:data:`MIN_PARALLEL_ROWS`, the measured scale below which process
startup and IPC dominate any multi-core win.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Sequence

from ..core.analysis import ModificationPlan, Strategy
from ..core.classify import split_segments
from ..core.cost import _nlogk, sort_comparisons

#: Forced serial threshold: inputs below this row count never shard.
#: ``None`` (the default) derives the threshold from the per-host
#: calibration (:meth:`repro.parallel.calibrate.Calibration.
#: min_parallel_rows`) — the measured break-even input size where the
#: multi-core win starts covering pool startup and data-plane cost.
#: Set ``REPRO_PARALLEL_MIN_ROWS`` (or assign here) to pin a constant
#: for experiments.
_min_rows_env = os.environ.get("REPRO_PARALLEL_MIN_ROWS")
MIN_PARALLEL_ROWS: int | None = (
    int(_min_rows_env) if _min_rows_env is not None else None
)

#: Target shard count per worker — slack for dynamic load balancing.
SHARDS_PER_WORKER = 4

#: Strategies whose output is the concatenation of independent
#: per-segment outputs.  MERGE_RUNS (no shared prefix) merges runs
#: across the whole input and FULL_SORT has no segments at all; both
#: stay serial.
SHARDABLE_STRATEGIES = (Strategy.SEGMENT_SORT, Strategy.COMBINED)


@dataclass(frozen=True)
class Shard:
    """A contiguous row range ``[lo, hi)`` covering whole segments."""

    index: int
    lo: int
    hi: int
    n_segments: int
    cost: float

    @property
    def n_rows(self) -> int:
        return self.hi - self.lo


@dataclass(frozen=True)
class ShardPlan:
    """Planner verdict: either a shard list or a serial fallback."""

    shards: tuple[Shard, ...]
    n_segments: int
    total_cost: float
    parallel: bool
    reason: str

    @staticmethod
    def serial(reason: str, n_segments: int = 0) -> "ShardPlan":
        return ShardPlan((), n_segments, 0.0, False, reason)


def segment_cost(size: int, n_runs: int, strategy: Strategy) -> float:
    """Estimated work for one segment under ``strategy``.

    Segment sorting pays the from-scratch bound ``n log2(n/e)``; the
    combined method merges the segment's pre-existing runs for
    ``n log2(runs)``.  Each row also pays a constant shipping charge so
    that already-sorted segments (zero comparisons) still register the
    pickling cost they impose on the pool.
    """
    if strategy is Strategy.SEGMENT_SORT:
        comparisons = sort_comparisons(size)
    else:
        comparisons = _nlogk(size, n_runs)
    return comparisons + float(size)


def plan_shards(
    ovcs: Sequence[tuple],
    n_rows: int,
    plan: ModificationPlan,
    strategy: Strategy,
    n_workers: int,
    min_rows: int | None = None,
    shards_per_worker: int = SHARDS_PER_WORKER,
    segments: Sequence[tuple[int, int]] | None = None,
) -> ShardPlan:
    """Bin-pack the input's segments into roughly equal-cost shards.

    Returns a serial plan (``parallel=False``) whenever sharding cannot
    pay off; callers fall back to the in-process executors.
    ``segments`` supplies already-computed segment boundaries (the
    dispatcher classifies the input exactly once); when omitted they
    are derived from the codes here.
    """
    if min_rows is None:
        min_rows = MIN_PARALLEL_ROWS
    if min_rows is None:
        from . import calibrate

        min_rows = calibrate.get().min_parallel_rows(max(n_workers, 2))
    if n_workers < 2:
        return ShardPlan.serial("fewer than two workers")
    if strategy not in SHARDABLE_STRATEGIES:
        return ShardPlan.serial(
            f"strategy {strategy.value} is not segment-shardable"
        )
    if n_rows < min_rows:
        return ShardPlan.serial(
            f"input below parallel threshold ({n_rows} < {min_rows} rows)"
        )
    p = plan.prefix_len
    if p == 0:
        return ShardPlan.serial("no shared prefix: single segment", 1)

    if segments is None:
        segments = list(split_segments(ovcs, p, n_rows))
    if len(segments) < 2:
        return ShardPlan.serial("single segment", len(segments))

    run_boundary = p + plan.infix_len
    costs = []
    for lo, hi in segments:
        if strategy is Strategy.COMBINED:
            n_runs = sum(1 for i in range(lo, hi) if ovcs[i][0] < run_boundary)
        else:
            n_runs = hi - lo
        costs.append(segment_cost(hi - lo, max(n_runs, 1), strategy))
    total = sum(costs)

    max_shards = max(2, n_workers * shards_per_worker)
    target = total / max_shards

    shards: list[Shard] = []
    acc_cost = 0.0
    acc_segments = 0
    shard_lo = segments[0][0]
    for (lo, hi), cost in zip(segments, costs):
        acc_cost += cost
        acc_segments += 1
        if acc_cost >= target and len(shards) < max_shards - 1:
            shards.append(
                Shard(len(shards), shard_lo, hi, acc_segments, acc_cost)
            )
            shard_lo = hi
            acc_cost = 0.0
            acc_segments = 0
    if acc_segments:
        shards.append(
            Shard(len(shards), shard_lo, n_rows, acc_segments, acc_cost)
        )

    if len(shards) < 2:
        return ShardPlan.serial(
            "cost concentrated in one shard", len(segments)
        )
    return ShardPlan(tuple(shards), len(segments), total, True, "parallel")
