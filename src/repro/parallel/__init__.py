"""Parallel order-modification subsystem.

The paper's structural insight — the shared key prefix partitions the
input into independent segments — makes order modification
embarrassingly parallel.  This package shards a modification job across
worker processes and streams the results back in global order:

* :mod:`~repro.parallel.planner` — segments -> roughly equal-cost
  contiguous shards, priced by the Section 3.5 cost model;
* :mod:`~repro.parallel.worker` — spawn-safe shard execution (fast
  kernels or reference executors) inside each worker process;
* :mod:`~repro.parallel.pool` — the process pool driver with bounded
  in-flight shards and chunked result batches;
* :mod:`~repro.parallel.collector` — the ordered streaming collector
  that re-emits shard outputs in segment order with bounded buffering;
* :mod:`~repro.parallel.api` — :func:`parallel_modify` and the
  ``workers=`` knob resolution, wired into
  :func:`repro.core.modify.modify_sort_order`, the ``Sort`` and
  ``StreamingModify`` operators, ``Query.order_by`` and the CLI.
"""

from .api import parallel_modify, resolve_workers
from .collector import OrderedCollector, ShardError
from .planner import (
    MIN_PARALLEL_ROWS,
    Shard,
    ShardPlan,
    plan_shards,
)
from .pool import ShardExecutor
from .worker import ShardContext, execute_shard

__all__ = [
    "MIN_PARALLEL_ROWS",
    "OrderedCollector",
    "Shard",
    "ShardContext",
    "ShardError",
    "ShardExecutor",
    "ShardPlan",
    "execute_shard",
    "parallel_modify",
    "plan_shards",
    "resolve_workers",
]
