"""Shared-memory data plane: flat result buffers + tiny descriptors.

The legacy pool protocol ships every shard's rows and codes across
``multiprocessing.Queue`` as pickled Python lists — twice (payload out,
result back).  Measured on the bench workloads that is ~4x the cost of
the modification itself.  The data plane removes the bulk bytes from
the queue entirely:

* **Input** is zero-copy by construction: the pool forks its workers
  *after* the driver holds the full ``rows``/``ovcs`` lists, so every
  worker inherits them through copy-on-write memory.  A task is just
  ``(shard, attempt, lo, hi)``.
* **Output** is a permutation, not rows.  Order modification never
  creates rows — every output row *is* an input row — so a worker only
  needs to report, per output position, which global input row lands
  there, plus the recomputed offset-value code.  Three flat signed
  64-bit regions in one named :class:`multiprocessing.shared_memory`
  block hold exactly that: ``perm`` (global row indices), ``off`` and
  ``val`` (paper-form codes, split into columns).  Shards cover
  ``[lo, hi)`` and write their output at the same global offsets
  (modification preserves per-segment row counts), so the regions
  need no allocator and retries simply overwrite.
* **Descriptors** — ``("chunkref", shard, attempt, seq, start, stop,
  checksum, ...)`` — are all that crosses the queue.  The driver
  verifies each chunk's CRC32 against the region bytes before
  accepting it, and the ordered collector materializes rows lazily, in
  global order, with ``rows[perm[i]]``.

The block is charged to the active :class:`~repro.exec.memory.
MemoryAccountant` under ``"pool.shm"`` and unlinked in the executor's
``finally`` — normal completion, worker crash, hang, and quarantine all
release it.  :func:`plane_segment_names` enumerates live ``/dev/shm``
segments so tests can assert nothing leaks.
"""

from __future__ import annotations

import os
import secrets
import time
import zlib
from array import array
from multiprocessing import shared_memory

from ..exec import memory
from ..obs import METRICS

#: Name prefix of every data-plane segment (leak checks key on it).
PLANE_PREFIX = "repro-plane-"

_WORD = 8  # array('q') item size: one signed 64-bit word


def plane_segment_names() -> set[str]:
    """Names of live data-plane segments on this host (POSIX shm)."""
    root = "/dev/shm"
    try:
        entries = os.listdir(root)
    except OSError:  # pragma: no cover - non-POSIX shm layout
        return set()
    return {name for name in entries if name.startswith(PLANE_PREFIX)}


class PlaneBuffers:
    """One job's output regions: ``perm``/``off``/``val``, each ``n`` words.

    Created by the driver before the pool forks; workers inherit the
    open mapping (no attach syscall, no second copy).  All three views
    are ``array('q')``-compatible memoryviews over one named block.
    """

    def __init__(self, n_rows: int) -> None:
        self.n_rows = n_rows
        self.nbytes = max(1, 3 * n_rows * _WORD)
        self.name = f"{PLANE_PREFIX}{os.getpid()}-{secrets.token_hex(4)}"
        self._shm = shared_memory.SharedMemory(
            create=True, size=self.nbytes, name=self.name
        )
        buf = memoryview(self._shm.buf)
        self._views = [
            buf[0 : n_rows * _WORD].cast("q"),
            buf[n_rows * _WORD : 2 * n_rows * _WORD].cast("q"),
            buf[2 * n_rows * _WORD : 3 * n_rows * _WORD].cast("q"),
            buf,
        ]
        self.perm, self.off, self.val = self._views[:3]
        self._charged = 0
        accountant = memory.current()
        if accountant is not None:
            accountant.charge("pool.shm", self.nbytes)
            self._charged = self.nbytes
        if METRICS.enabled:
            METRICS.counter("pool.shm_blocks").inc()
            METRICS.counter("pool.shm_bytes").inc(self.nbytes)

    # ------------------------------------------------------ worker side

    def write(
        self,
        start: int,
        stop: int,
        perm: array,
        off: array,
        val: array,
        base: int,
    ) -> int:
        """Write one chunk's words at global ``[start, stop)``; return CRC.

        ``perm``/``off``/``val`` are the shard's full output arrays;
        ``base`` is the shard's global ``lo``, so the chunk's slice is
        ``[start - base, stop - base)`` of each array.
        """
        a, b = start - base, stop - base
        self.perm[start:stop] = perm[a:b]
        self.off[start:stop] = off[a:b]
        self.val[start:stop] = val[a:b]
        return self.checksum(start, stop)

    # ------------------------------------------------------ driver side

    def checksum(self, start: int, stop: int) -> int:
        """CRC32 over the three regions' bytes for ``[start, stop)``."""
        crc = zlib.crc32(self.perm[start:stop])
        crc = zlib.crc32(self.off[start:stop], crc)
        return zlib.crc32(self.val[start:stop], crc)

    def destroy(self) -> None:
        """Release views, close the mapping, unlink the segment."""
        for view in self._views:
            view.release()
        self._views = []
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        if self._charged:
            accountant = memory.current()
            if accountant is not None:
                accountant.release("pool.shm", self._charged)
            self._charged = 0

    def close(self) -> None:
        """Worker-side teardown: drop views and the mapping, keep the
        segment (the driver owns the unlink)."""
        for view in self._views:
            view.release()
        self._views = []
        self._shm.close()


class PlaneSlice:
    """A lazily-materialized output chunk: global ``[start, stop)``.

    Stands in for a ``(rows, ovcs)`` chunk inside the ordered
    collector; :meth:`materialize` resolves the permutation against the
    driver's own row objects the moment the chunk is next in global
    order.  Buffered slices cost a fixed few bytes, not row storage —
    the reorder buffer holds descriptors, never rows.
    """

    __slots__ = ("buffers", "src_rows", "start", "stop", "phases")

    #: Approximate driver-side footprint of one buffered slice (bytes).
    NBYTES = 96

    def __init__(
        self,
        buffers: PlaneBuffers,
        src_rows: list,
        start: int,
        stop: int,
        phases: dict | None = None,
    ) -> None:
        self.buffers = buffers
        self.src_rows = src_rows
        self.start = start
        self.stop = stop
        self.phases = phases

    def __len__(self) -> int:
        return self.stop - self.start

    def materialize(self) -> tuple[list, list]:
        """Resolve to ``(rows, ovcs)`` — the only full-size copy made."""
        t0 = time.perf_counter()
        lo, hi = self.start, self.stop
        buffers = self.buffers
        rows = list(map(self.src_rows.__getitem__, buffers.perm[lo:hi]))
        ovcs = list(zip(buffers.off[lo:hi], buffers.val[lo:hi]))
        if self.phases is not None:
            self.phases["pack_s"] += time.perf_counter() - t0
        return rows, ovcs
