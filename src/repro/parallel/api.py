"""Parallel order modification: the subsystem's entry points.

:func:`parallel_modify` is the multi-core twin of the strategy branches
in :func:`repro.core.modify.modify_sort_order`: the planner shards the
segments, a worker pool executes the shards, and the ordered collector
reassembles the output — rows *and* offset-value codes bit-identical to
a serial run, because no comparison ever crosses a segment boundary.
It returns ``None`` whenever the planner declines (tiny input, single
segment, unshardable strategy, one worker), leaving the caller on the
serial path; callers therefore never pay pool overhead for jobs that
cannot amortize it.

Worker engine selection mirrors the serial dispatcher: shards run the
packed-code fast kernels exactly when the caller's ``engine``/
``stats``/``max_fan_in`` combination would have chosen them serially,
and the instrumented reference executors otherwise.  Reference shards
ship their comparison counters home with their final chunk, so a
caller-supplied :class:`~repro.ovc.stats.ComparisonStats` ends up with
exactly the counts a serial reference run would have produced (the
per-segment work is identical; only its distribution over processes
changes).
"""

from __future__ import annotations

import os

from ..core.analysis import ModificationPlan, Strategy
from ..exec import faults as faults_mod
from ..exec.config import ExecutionConfig
from ..model import SortSpec, Table
from ..obs import METRICS, TRACER
from ..ovc.stats import ComparisonStats
from . import calibrate
from .planner import ShardPlan, plan_shards
from .pool import DEFAULT_CHUNK_ROWS, ShardExecutor
from .worker import ShardContext


def resolve_workers(workers: int | str | None) -> int:
    """Normalize a ``workers=`` knob to a concrete worker count.

    ``None``/``0``/``1`` mean serial; ``"auto"`` asks the OS for the
    core count; explicit integers are taken at face value (they may
    exceed the core count — useful for testing oversubscription).
    """
    if workers is None:
        return 1
    if workers == "auto":
        return os.cpu_count() or 1
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ValueError(
            f"workers must be an int, 'auto', or None; got {workers!r}"
        )
    if workers < 0:
        raise ValueError(f"workers must be non-negative, got {workers}")
    return max(workers, 1)


def _use_fast(engine: str, stats, max_fan_in) -> bool:
    """The serial dispatcher's engine rule, applied to worker shards."""
    if engine == "fast":
        return True
    return engine == "auto" and stats is None and max_fan_in is None


def parallel_modify(
    table: Table,
    new_spec: SortSpec,
    plan: ModificationPlan,
    strategy: Strategy,
    workers: int | str | None,
    engine: str = "auto",
    stats: ComparisonStats | None = None,
    max_fan_in: int | None = None,
    min_rows: int | None = None,
    chunk_rows: int | None = None,
    start_method: str | None = None,
    config: ExecutionConfig | None = None,
    segments: list[tuple[int, int]] | None = None,
    sink=None,
    faults=None,
    data_plane: str | None = None,
) -> Table | None:
    """Execute ``strategy`` across worker processes; ``None`` if serial.

    The table must carry offset-value codes (segment boundaries and the
    executors read them).  When a result is returned it is bit-identical
    to the serial engines' output, and ``stats`` (if given) has absorbed
    the workers' reference-path counters.

    ``config`` supplies engine, fan-in cap, data-plane choice, and the
    pool's retry/timeout policy in one object (overriding the loose
    ``engine``/``max_fan_in`` parameters); ``segments`` are
    pre-computed segment boundaries (classification runs once, in the
    dispatcher); ``sink`` is an optional governed output buffer that
    absorbs ordered chunks as they stream (spilling under budget
    pressure); ``faults`` overrides the injected-fault plan (defaults
    to ``REPRO_FAULTS``).

    ``data_plane`` selects the worker IPC protocol: ``"auto"`` (the
    default) uses the zero-copy shared-memory plane whenever it can —
    fast-path engine, ``fork`` start method — and the legacy pickled
    chunks otherwise; ``"shm"`` forces the plane (``ValueError`` when
    impossible); ``"pickle"`` forces the legacy protocol.

    ``workers="auto"`` is *adaptive*: besides the core count, it
    consults the per-host calibration (:mod:`repro.parallel.calibrate`)
    and stays serial whenever the measured break-even input size says
    the pool cannot win — so "auto" never regresses a serial run.
    Explicit worker counts are taken at face value.
    """
    retry_policy = None
    if config is not None:
        engine = config.engine
        max_fan_in = config.max_fan_in
        retry_policy = config.retry_policy
        if data_plane is None:
            data_plane = config.data_plane
    if data_plane is None:
        data_plane = os.environ.get("REPRO_DATA_PLANE") or "auto"
    n_workers = resolve_workers(workers)
    if n_workers < 2:
        # Covers workers="auto" on a single-core host: resolve to
        # serial immediately, before any planning or pool cost.
        return None
    if workers == "auto" and min_rows is None:
        threshold = calibrate.get().min_parallel_rows(n_workers)
        if len(table.rows) < threshold:
            if METRICS.enabled:
                METRICS.counter("pool.adaptive_serial").inc()
            return None
    shard_plan = plan_shards(
        table.ovcs, len(table.rows), plan, strategy, n_workers,
        min_rows=min_rows, segments=segments,
    )
    if not shard_plan.parallel:
        return None

    ctx = ShardContext(
        schema=table.schema,
        input_spec=table.sort_spec,
        output_spec=new_spec,
        plan=plan,
        strategy=strategy,
        use_fast=_use_fast(engine, stats, max_fan_in),
        collect_stats=stats is not None,
        max_fan_in=max_fan_in,
        trace=TRACER.enabled,
        collect_metrics=METRICS.enabled,
        faults=faults_mod.from_env() if faults is None else tuple(faults),
    )
    executor = ShardExecutor(
        ctx, n_workers, chunk_rows=chunk_rows, start_method=start_method,
        retry_policy=retry_policy,
    )
    rows, ovcs = table.rows, table.ovcs
    plane_ok = ctx.use_fast and executor.start_method == "fork"
    if data_plane == "shm" and not plane_ok:
        raise ValueError(
            "data_plane='shm' needs the fork start method and a fast-path "
            "engine (no stats, no fan-in cap)"
        )
    if plane_ok and data_plane != "pickle":
        stream = executor.run_plane(
            rows, ovcs, [(s.lo, s.hi) for s in shard_plan.shards]
        )
    else:
        stream = executor.run(
            (rows[s.lo : s.hi], ovcs[s.lo : s.hi]) for s in shard_plan.shards
        )
    out_rows: list[tuple] = []
    out_ovcs: list[tuple] = []
    with TRACER.span(
        "parallel.modify",
        workers=n_workers,
        shards=len(shard_plan.shards),
        strategy=strategy.name.lower(),
    ):
        for chunk_rows_batch, chunk_ovcs in stream:
            if sink is not None:
                sink.absorb(chunk_rows_batch, chunk_ovcs)
            else:
                out_rows.extend(chunk_rows_batch)
                out_ovcs.extend(chunk_ovcs)
    if stats is not None and executor.stats is not None:
        stats.merge(executor.stats)
    stitch_telemetry(executor.telemetry)
    if sink is not None:
        out_rows, out_ovcs = sink.materialize()
    return Table(table.schema, out_rows, new_spec, out_ovcs)


def stitch_telemetry(telemetry: list[tuple[int, dict]]) -> None:
    """Fold per-shard worker telemetry into this process's collectors.

    Span records (already tagged worker/shard by the worker) land in
    the main tracer in shard order — the stitched timeline — and metric
    snapshots merge into the main registry.
    """
    for _shard, shipped in telemetry:
        if shipped.get("spans"):
            TRACER.add_records(shipped["spans"])
        if shipped.get("metrics"):
            METRICS.merge(shipped["metrics"])
