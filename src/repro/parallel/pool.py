"""Worker pool driver: shard payloads in, ordered output chunks out.

:class:`ShardExecutor` owns the process pool for one parallel job.  It
interleaves feeding and draining in a single loop — no helper threads —
with two backpressure controls:

* at most ``max_inflight`` shards are dispatched but not yet fully
  received, which bounds both worker memory and the ordered collector's
  reorder buffer;
* workers ship results in batches of ``chunk_rows`` rows, bounding the
  pickle size of any single IPC message.

The loop never deadlocks: the task queue is unbounded (feeding never
blocks), and the driver polls the result queue with a bounded timeout,
reconciling worker liveness and per-shard deadlines whenever the poll
comes up empty.

Fault tolerance (PR 4): the driver supervises every shard attempt.
Workers announce ``("start", shard, attempt, pid)`` before executing,
which arms the shard's deadline (``retry_policy.timeout_s``) and ties
it to a process for crash detection.  A shard's chunks are *held* by
the driver until its final chunk arrives and the total row count
matches the dispatched payload — order modification preserves row
count, so a mismatch means silent corruption — and only then released
to the ordered collector, so no corrupt or partial attempt ever
reaches a consumer.  A failed attempt (worker error, death, timeout,
or row-count mismatch) is retried up to ``retry_policy.retries``
times on the surviving pool (dead and hung workers are replaced); a
shard that exhausts its retries is *quarantined* — executed serially
in the driver itself, where fault injection cannot reach — so one
poisoned shard degrades gracefully instead of failing the query.
Retries and degradations are visible as ``pool.shard_retries`` /
``pool.shard_degraded`` counters and ``pool.*`` spans.

Stragglers are harmless: every result message echoes its attempt
number, and the driver discards messages from abandoned attempts.

The start method defaults to the platform's (``fork`` on Linux) and can
be forced — e.g. to ``spawn`` — via the ``REPRO_PARALLEL_START_METHOD``
environment variable or the ``start_method`` argument; all worker entry
points are module-level importables, so both methods work.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import time
import traceback
from typing import Iterable, Iterator

from ..exec import memory
from ..exec.config import RetryPolicy
from ..obs import METRICS, TRACER
from .collector import Chunk, OrderedCollector, ShardError
from .worker import ShardContext, execute_shard, worker_main

DEFAULT_CHUNK_ROWS = 8192

#: Result-queue poll interval while idle: the cadence of liveness and
#: deadline checks.  Short enough that a crashed worker is noticed
#: promptly, long enough to stay invisible in profiles.
POLL_INTERVAL_S = 0.2


class _ShardState:
    """Driver-side supervision record for one dispatched shard."""

    __slots__ = (
        "rows", "ovcs", "attempt", "pid", "deadline",
        "held", "held_rows", "held_bytes", "failures",
    )

    def __init__(self, rows: list[tuple], ovcs: list[tuple]) -> None:
        self.rows = rows
        self.ovcs = ovcs
        self.attempt = 0
        self.pid: int | None = None
        self.deadline: float | None = None
        #: ``(seq, rows, ovcs, last, counters, telemetry)`` awaiting
        #: validation — released to the collector only once the final
        #: chunk arrives and the row count checks out.
        self.held: list[tuple] = []
        self.held_rows = 0
        self.held_bytes = 0
        self.failures = 0


class ShardExecutor:
    """Execute shard payloads on a worker pool, streaming ordered chunks.

    One instance drives one job: call :meth:`run` once with an iterable
    of ``(rows, ovcs)`` payloads and consume the generator.  After
    exhaustion, :attr:`stats` holds the merged worker counters,
    :attr:`peak_buffered_rows` the collector's reorder high-water mark,
    and :attr:`retried_shards` / :attr:`degraded_shards` the fault
    recovery tallies.  ``retry_policy`` defaults to one retry with no
    timeout (hang detection is opt-in; crash detection is always on).
    """

    def __init__(
        self,
        ctx: ShardContext,
        n_workers: int,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        max_inflight: int | None = None,
        start_method: str | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self._ctx = ctx
        self._n_workers = n_workers
        self._chunk_rows = max(1, chunk_rows)
        self._max_inflight = (
            max_inflight if max_inflight is not None else 2 * n_workers
        )
        if start_method is None:
            start_method = os.environ.get("REPRO_PARALLEL_START_METHOD")
        self._mp = (
            multiprocessing.get_context(start_method)
            if start_method
            else multiprocessing.get_context()
        )
        self._retry = retry_policy if retry_policy is not None else RetryPolicy()
        self._procs: list = []
        self._tasks = None
        self._results = None
        self.stats = None
        self.peak_buffered_rows = 0
        #: ``(shard, telemetry)`` pairs in shard order, from workers
        #: that recorded spans/metrics (ShardContext.trace/.collect_metrics).
        self.telemetry: list[tuple[int, dict]] = []
        #: Seconds the driver spent blocked on results *because* the
        #: in-flight cap stalled feeding — the backpressure wait.
        self.backpressure_wait_s = 0.0
        #: Shard attempts re-dispatched after a failure.
        self.retried_shards = 0
        #: Shards that exhausted retries and ran serially in the driver.
        self.degraded_shards = 0

    def _spawn_worker(self) -> None:
        proc = self._mp.Process(
            target=worker_main,
            args=(self._ctx, self._tasks, self._results, self._chunk_rows),
            daemon=True,
        )
        proc.start()
        self._procs.append(proc)

    def _start(self):
        self._tasks = self._mp.Queue()
        self._results = self._mp.Queue()
        for _ in range(self._n_workers):
            self._spawn_worker()
        return self._tasks, self._results

    def _shutdown(self, tasks) -> None:
        for _ in self._procs:
            tasks.put(None)
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)
        self._procs.clear()

    def run(
        self, payloads: Iterable[tuple[list[tuple], list[tuple]]]
    ) -> Iterator[Chunk]:
        """Yield ``(rows, ovcs)`` chunks in global (shard, seq) order."""
        collector = OrderedCollector()
        tasks, results = self._start()
        source = iter(payloads)
        exhausted = False
        dispatched = 0
        #: shard -> _ShardState for every dispatched-but-unfinished shard.
        states: dict[int, _ShardState] = {}
        metrics_on = METRICS.enabled
        try:
            while True:
                while (
                    not exhausted
                    and dispatched - collector.emitted_shards
                    < self._max_inflight
                ):
                    try:
                        rows, ovcs = next(source)
                    except StopIteration:
                        exhausted = True
                        break
                    states[dispatched] = _ShardState(rows, ovcs)
                    tasks.put((dispatched, 0, rows, ovcs))
                    dispatched += 1
                if exhausted and collector.emitted_shards >= dispatched:
                    break
                inflight = dispatched - collector.emitted_shards
                if metrics_on:
                    METRICS.gauge("pool.inflight_shards").set(inflight)
                # Blocked on results while more payloads wait: that is
                # the in-flight cap pushing back on the feeder.
                stalled = not exhausted and inflight >= self._max_inflight
                t0 = time.perf_counter()
                try:
                    message = results.get(timeout=self._poll_timeout(states))
                except queue.Empty:
                    if stalled:
                        self.backpressure_wait_s += time.perf_counter() - t0
                    yield from self._reap(states, tasks, collector)
                    continue
                if stalled:
                    self.backpressure_wait_s += time.perf_counter() - t0
                yield from self._handle(message, states, tasks, collector)
        finally:
            self.stats = collector.stats
            self.peak_buffered_rows = collector.peak_buffered_rows
            self.telemetry = collector.telemetry_in_shard_order()
            if metrics_on:
                METRICS.counter("pool.backpressure_wait_seconds").inc(
                    self.backpressure_wait_s
                )
                METRICS.gauge("pool.reorder_buffered_rows").set(
                    collector.peak_buffered_rows
                )
            self._shutdown(tasks)
            results.close()
            tasks.close()
            self._tasks = self._results = None

    # ------------------------------------------------------- supervision

    def _poll_timeout(self, states: dict[int, _ShardState]) -> float:
        """Sleep at most until the nearest shard deadline."""
        timeout = POLL_INTERVAL_S
        now = time.monotonic()
        for st in states.values():
            if st.deadline is not None:
                timeout = min(timeout, st.deadline - now)
        return max(0.01, timeout)

    def _handle(
        self,
        message: tuple,
        states: dict[int, _ShardState],
        tasks,
        collector: OrderedCollector,
    ) -> list[Chunk]:
        kind = message[0]
        if kind == "start":
            _, shard, attempt, pid = message
            st = states.get(shard)
            if st is not None and st.attempt == attempt:
                st.pid = pid
                if self._retry.timeout_s is not None:
                    st.deadline = time.monotonic() + self._retry.timeout_s
            return []
        if kind == "error":
            _, shard, attempt, tb = message
            st = states.get(shard)
            if st is None or st.attempt != attempt:
                return []
            return self._fail(shard, st, states, tasks, collector, tb)
        _, shard, attempt, seq, rows, ovcs, last, counters, telemetry = message
        st = states.get(shard)
        if st is None or st.attempt != attempt:
            return []  # straggler from an abandoned attempt
        st.held.append((seq, rows, ovcs, last, counters, telemetry))
        st.held_rows += len(rows)
        accountant = memory.current()
        if accountant is not None:
            n_bytes = memory.rows_nbytes(rows, ovcs)
            st.held_bytes += n_bytes
            accountant.charge("pool.reorder", n_bytes)
        if not last:
            return []
        if st.held_rows != len(st.rows):
            return self._fail(
                shard, st, states, tasks, collector,
                f"row-count mismatch: shard {shard} returned {st.held_rows} "
                f"rows for a {len(st.rows)}-row payload",
            )
        # Validated: release the attempt's chunks to the collector in
        # sequence order (they arrive ordered from one worker, but a
        # sort keeps that an implementation detail, not a correctness
        # assumption).
        ready: list[Chunk] = []
        for seq, rows, ovcs, last, counters, telemetry in sorted(st.held):
            ready.extend(
                collector.add(
                    ("chunk", shard, seq, rows, ovcs, last, counters, telemetry)
                )
            )
        self._release_state(shard, st, states)
        return ready

    def _reap(
        self,
        states: dict[int, _ShardState],
        tasks,
        collector: OrderedCollector,
    ) -> list[Chunk]:
        """Liveness and deadline reconciliation (the empty-poll path)."""
        ready: list[Chunk] = []
        dead = [proc for proc in self._procs if not proc.is_alive()]
        for proc in dead:
            self._procs.remove(proc)
            owned = [
                (shard, st)
                for shard, st in states.items()
                if st.pid == proc.pid
            ]
            if not owned:
                # The worker died before its start announcement reached
                # us; it may have taken the oldest not-yet-started task
                # with it.  Re-dispatching that shard is always safe:
                # if the original task survives in the queue, its
                # results carry a stale attempt number and are dropped.
                unstarted = [
                    (shard, st) for shard, st in states.items() if st.pid is None
                ]
                owned = unstarted[:1]
            self._spawn_worker()
            for shard, st in owned:
                ready.extend(
                    self._fail(
                        shard, st, states, tasks, collector,
                        f"worker pid {proc.pid} died (exit {proc.exitcode})",
                    )
                )
        now = time.monotonic()
        for shard, st in list(states.items()):
            if st.deadline is None or now <= st.deadline:
                continue
            hung = next((p for p in self._procs if p.pid == st.pid), None)
            if hung is not None:
                hung.terminate()
                hung.join(timeout=5)
                self._procs.remove(hung)
                self._spawn_worker()
            ready.extend(
                self._fail(
                    shard, st, states, tasks, collector,
                    f"shard {shard} timed out after {self._retry.timeout_s}s",
                )
            )
        return ready

    def _fail(
        self,
        shard: int,
        st: _ShardState,
        states: dict[int, _ShardState],
        tasks,
        collector: OrderedCollector,
        reason: str,
    ) -> list[Chunk]:
        """One attempt failed: discard its output, retry or quarantine."""
        self._discard_held(st)
        st.pid = None
        st.deadline = None
        st.failures += 1
        if st.failures <= self._retry.retries:
            st.attempt += 1
            self.retried_shards += 1
            if METRICS.enabled:
                METRICS.counter("pool.shard_retries").inc()
            with TRACER.span(
                "pool.shard_retry",
                shard=shard,
                attempt=st.attempt,
                reason=reason.splitlines()[0][:200],
            ):
                tasks.put((shard, st.attempt, st.rows, st.ovcs))
            return []
        # Quarantine: the shard failed every pooled attempt.  Execute it
        # serially in the driver — outside the workers, where injected
        # faults (and most classes of environmental failure) cannot
        # reach — so the query degrades instead of dying.
        self.degraded_shards += 1
        if METRICS.enabled:
            METRICS.counter("pool.shard_degraded").inc()
        with TRACER.span(
            "pool.shard_degraded",
            shard=shard,
            rows=len(st.rows),
            reason=reason.splitlines()[0][:200],
        ):
            try:
                out_rows, out_ovcs, counters = execute_shard(
                    st.rows, st.ovcs, self._ctx
                )
            except BaseException:
                raise ShardError(shard, traceback.format_exc()) from None
        n = len(out_rows)
        step = self._chunk_rows
        n_chunks = max(1, -(-n // step))
        ready: list[Chunk] = []
        for seq in range(n_chunks):
            lo, hi = seq * step, min(n, (seq + 1) * step)
            last = seq == n_chunks - 1
            ready.extend(
                collector.add(
                    (
                        "chunk", shard, seq, out_rows[lo:hi], out_ovcs[lo:hi],
                        last, counters if last else None, None,
                    )
                )
            )
        self._release_state(shard, st, states)
        return ready

    def _discard_held(self, st: _ShardState) -> None:
        st.held.clear()
        st.held_rows = 0
        if st.held_bytes:
            accountant = memory.current()
            if accountant is not None:
                accountant.release("pool.reorder", st.held_bytes)
            st.held_bytes = 0

    def _release_state(
        self, shard: int, st: _ShardState, states: dict[int, _ShardState]
    ) -> None:
        if st.held_bytes:
            accountant = memory.current()
            if accountant is not None:
                accountant.release("pool.reorder", st.held_bytes)
            st.held_bytes = 0
        st.held.clear()
        st.held_rows = 0
        del states[shard]
