"""Worker pool driver: shard payloads in, ordered output chunks out.

:class:`ShardExecutor` owns the process pool for one parallel job.  It
interleaves feeding and draining in a single loop — no helper threads —
with two backpressure controls:

* at most ``max_inflight`` shards are dispatched but not yet fully
  received, which bounds both worker memory and the ordered collector's
  reorder buffer;
* workers ship results in batches of ``chunk_rows`` rows, bounding the
  pickle size of any single IPC message.

The loop never deadlocks: the task queue is unbounded (feeding never
blocks), and the driver only blocks on the result queue while at least
one shard is in flight — some worker then holds a task and will
eventually produce a message.

The start method defaults to the platform's (``fork`` on Linux) and can
be forced — e.g. to ``spawn`` — via the ``REPRO_PARALLEL_START_METHOD``
environment variable or the ``start_method`` argument; all worker entry
points are module-level importables, so both methods work.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Iterable, Iterator

from ..obs import METRICS
from .collector import Chunk, OrderedCollector
from .worker import ShardContext, worker_main

DEFAULT_CHUNK_ROWS = 8192


class ShardExecutor:
    """Execute shard payloads on a worker pool, streaming ordered chunks.

    One instance drives one job: call :meth:`run` once with an iterable
    of ``(rows, ovcs)`` payloads and consume the generator.  After
    exhaustion, :attr:`stats` holds the merged worker counters and
    :attr:`peak_buffered_rows` the collector's reorder high-water mark.
    """

    def __init__(
        self,
        ctx: ShardContext,
        n_workers: int,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        max_inflight: int | None = None,
        start_method: str | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self._ctx = ctx
        self._n_workers = n_workers
        self._chunk_rows = max(1, chunk_rows)
        self._max_inflight = (
            max_inflight if max_inflight is not None else 2 * n_workers
        )
        if start_method is None:
            start_method = os.environ.get("REPRO_PARALLEL_START_METHOD")
        self._mp = (
            multiprocessing.get_context(start_method)
            if start_method
            else multiprocessing.get_context()
        )
        self._procs: list = []
        self.stats = None
        self.peak_buffered_rows = 0
        #: ``(shard, telemetry)`` pairs in shard order, from workers
        #: that recorded spans/metrics (ShardContext.trace/.collect_metrics).
        self.telemetry: list[tuple[int, dict]] = []
        #: Seconds the driver spent blocked on results *because* the
        #: in-flight cap stalled feeding — the backpressure wait.
        self.backpressure_wait_s = 0.0

    def _start(self):
        tasks = self._mp.Queue()
        results = self._mp.Queue()
        for _ in range(self._n_workers):
            proc = self._mp.Process(
                target=worker_main,
                args=(self._ctx, tasks, results, self._chunk_rows),
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)
        return tasks, results

    def _shutdown(self, tasks) -> None:
        for _ in self._procs:
            tasks.put(None)
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)
        self._procs.clear()

    def run(
        self, payloads: Iterable[tuple[list[tuple], list[tuple]]]
    ) -> Iterator[Chunk]:
        """Yield ``(rows, ovcs)`` chunks in global (shard, seq) order."""
        collector = OrderedCollector()
        tasks, results = self._start()
        source = iter(payloads)
        exhausted = False
        dispatched = 0
        metrics_on = METRICS.enabled
        try:
            while True:
                while (
                    not exhausted
                    and dispatched - collector.emitted_shards
                    < self._max_inflight
                ):
                    try:
                        rows, ovcs = next(source)
                    except StopIteration:
                        exhausted = True
                        break
                    tasks.put((dispatched, rows, ovcs))
                    dispatched += 1
                if exhausted and collector.emitted_shards >= dispatched:
                    break
                inflight = dispatched - collector.emitted_shards
                if metrics_on:
                    METRICS.gauge("pool.inflight_shards").set(inflight)
                # Blocked on results while more payloads wait: that is
                # the in-flight cap pushing back on the feeder.
                stalled = not exhausted and inflight >= self._max_inflight
                if stalled:
                    t0 = time.perf_counter()
                    message = results.get()
                    self.backpressure_wait_s += time.perf_counter() - t0
                else:
                    message = results.get()
                yield from collector.add(message)
        finally:
            self.stats = collector.stats
            self.peak_buffered_rows = collector.peak_buffered_rows
            self.telemetry = collector.telemetry_in_shard_order()
            if metrics_on:
                METRICS.counter("pool.backpressure_wait_seconds").inc(
                    self.backpressure_wait_s
                )
                METRICS.gauge("pool.reorder_buffered_rows").set(
                    collector.peak_buffered_rows
                )
            self._shutdown(tasks)
            results.close()
            tasks.close()
