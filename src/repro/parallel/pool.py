"""Worker pool driver: shard payloads in, ordered output chunks out.

:class:`ShardExecutor` owns the process pool for one parallel job.  It
interleaves feeding and draining in a single loop — no helper threads —
with two backpressure controls:

* at most ``max_inflight`` shards are dispatched but not yet fully
  received, which bounds both worker memory and the ordered collector's
  reorder buffer;
* workers ship results in batches of ``chunk_rows`` rows, bounding the
  pickle size of any single IPC message.

The loop never deadlocks: the task queue is unbounded (feeding never
blocks), and the driver polls the result queue with a bounded timeout,
reconciling worker liveness and per-shard deadlines whenever the poll
comes up empty.

Fault tolerance (PR 4): the driver supervises every shard attempt.
Workers announce ``("start", shard, attempt, pid)`` before executing,
which arms the shard's deadline (``retry_policy.timeout_s``) and ties
it to a process for crash detection.  A shard's chunks are *held* by
the driver until its final chunk arrives and the total row count
matches the dispatched payload — order modification preserves row
count, so a mismatch means silent corruption — and only then released
to the ordered collector, so no corrupt or partial attempt ever
reaches a consumer.  A failed attempt (worker error, death, timeout,
or row-count mismatch) is retried up to ``retry_policy.retries``
times on the surviving pool (dead and hung workers are replaced); a
shard that exhausts its retries is *quarantined* — executed serially
in the driver itself, where fault injection cannot reach — so one
poisoned shard degrades gracefully instead of failing the query.
Retries and degradations are visible as ``pool.shard_retries`` /
``pool.shard_degraded`` counters and ``pool.*`` spans.

Stragglers are harmless: every result message echoes its attempt
number, and the driver discards messages from abandoned attempts.

The start method defaults to the platform's (``fork`` on Linux) and can
be forced — e.g. to ``spawn`` — via the ``REPRO_PARALLEL_START_METHOD``
environment variable or the ``start_method`` argument; all worker entry
points are module-level importables, so both methods work.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import time
import traceback
from typing import Iterable, Iterator

from ..exec import memory
from ..exec.config import RetryPolicy
from ..obs import LOG, METRICS, TRACER
from . import calibrate
from .collector import Chunk, OrderedCollector, ShardError
from .shm import PlaneBuffers, PlaneSlice
from .worker import (
    ShardContext,
    clear_plane_input,
    execute_shard,
    plane_worker_main,
    set_plane_input,
    worker_main,
)

#: Fallback result-chunk size when calibration is unavailable; the
#: executor normally derives the chunk size from the host calibration
#: (:meth:`repro.parallel.calibrate.Calibration.chunk_rows`).
DEFAULT_CHUNK_ROWS = 8192

#: Accounting estimate for one data-plane message crossing the queue:
#: a descriptor result (a tuple of small ints) or a range task.
_DESCRIPTOR_NBYTES = 128
_TASK_NBYTES = 64

#: Result-queue poll interval while idle: the cadence of liveness and
#: deadline checks.  Short enough that a crashed worker is noticed
#: promptly, long enough to stay invisible in profiles.
POLL_INTERVAL_S = 0.2


class _ShardState:
    """Driver-side supervision record for one dispatched shard.

    Legacy-protocol shards carry their payload (``rows``/``ovcs``);
    data-plane shards carry only the global range ``[lo, hi)`` — the
    payload lives in the fork-inherited input.
    """

    __slots__ = (
        "rows", "ovcs", "lo", "hi", "attempt", "pid", "deadline",
        "held", "held_rows", "held_bytes", "failures",
    )

    def __init__(
        self,
        rows: list[tuple] | None,
        ovcs: list[tuple] | None,
        lo: int = 0,
        hi: int = 0,
    ) -> None:
        self.rows = rows
        self.ovcs = ovcs
        self.lo = lo
        self.hi = hi
        self.attempt = 0
        self.pid: int | None = None
        self.deadline: float | None = None
        #: ``(seq, ...)`` chunk records awaiting validation — released
        #: to the collector only once the final chunk arrives and the
        #: row count checks out.
        self.held: list[tuple] = []
        self.held_rows = 0
        self.held_bytes = 0
        self.failures = 0

    @property
    def n_rows(self) -> int:
        """Rows this shard must return (order modification preserves it)."""
        return len(self.rows) if self.rows is not None else self.hi - self.lo


class ShardExecutor:
    """Execute shard payloads on a worker pool, streaming ordered chunks.

    One instance drives one job: call :meth:`run` once with an iterable
    of ``(rows, ovcs)`` payloads and consume the generator.  After
    exhaustion, :attr:`stats` holds the merged worker counters,
    :attr:`peak_buffered_rows` the collector's reorder high-water mark,
    and :attr:`retried_shards` / :attr:`degraded_shards` the fault
    recovery tallies.  ``retry_policy`` defaults to one retry with no
    timeout (hang detection is opt-in; crash detection is always on).
    """

    def __init__(
        self,
        ctx: ShardContext,
        n_workers: int,
        chunk_rows: int | None = None,
        max_inflight: int | None = None,
        start_method: str | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self._ctx = ctx
        self._n_workers = n_workers
        if chunk_rows is None:
            # Calibration-derived default: ~4 ms of kernel work per
            # chunk on this host (DEFAULT_CHUNK_ROWS if unmeasurable).
            chunk_rows = calibrate.get().chunk_rows()
        self._chunk_rows = max(1, chunk_rows)
        self._max_inflight = (
            max_inflight if max_inflight is not None else 2 * n_workers
        )
        if start_method is None:
            start_method = os.environ.get("REPRO_PARALLEL_START_METHOD")
        self._mp = (
            multiprocessing.get_context(start_method)
            if start_method
            else multiprocessing.get_context()
        )
        self._retry = retry_policy if retry_policy is not None else RetryPolicy()
        self._procs: list = []
        self._tasks = None
        self._results = None
        self.stats = None
        self.peak_buffered_rows = 0
        #: ``(shard, telemetry)`` pairs in shard order, from workers
        #: that recorded spans/metrics (ShardContext.trace/.collect_metrics).
        self.telemetry: list[tuple[int, dict]] = []
        #: Seconds the driver spent blocked on results *because* the
        #: in-flight cap stalled feeding — the backpressure wait.
        self.backpressure_wait_s = 0.0
        #: Shard attempts re-dispatched after a failure.
        self.retried_shards = 0
        #: Shards that exhausted retries and ran serially in the driver.
        self.degraded_shards = 0
        #: Per-phase accounting for the whole job: worker compute time,
        #: pack time (array builds + shm writes + driver materialize),
        #: residual IPC/coordination time, and estimated bytes that
        #: crossed the queues.  ``ipc_bytes`` is tallied only while the
        #: metrics registry is enabled (sizing rows is O(n)).
        self.phases = {
            "pack_s": 0.0,
            "compute_s": 0.0,
            "ipc_s": 0.0,
            "ipc_bytes": 0,
            "shm_bytes": 0,
        }
        #: Data-plane state, set only inside :meth:`run_plane`.
        self._plane: PlaneBuffers | None = None
        self._plane_rows: list | None = None
        self._plane_ovcs: list | None = None

    @property
    def start_method(self) -> str:
        """The resolved multiprocessing start method for this pool."""
        return self._mp.get_start_method()

    def _spawn_worker(self) -> None:
        proc = self._mp.Process(
            target=plane_worker_main if self._plane is not None else worker_main,
            args=(self._ctx, self._tasks, self._results, self._chunk_rows),
            daemon=True,
        )
        proc.start()
        self._procs.append(proc)

    def _start(self):
        self._tasks = self._mp.Queue()
        self._results = self._mp.Queue()
        for _ in range(self._n_workers):
            self._spawn_worker()
        return self._tasks, self._results

    def _shutdown(self, tasks) -> None:
        for _ in self._procs:
            tasks.put(None)
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)
        self._procs.clear()

    def run(
        self, payloads: Iterable[tuple[list[tuple], list[tuple]]]
    ) -> Iterator[Chunk]:
        """Yield ``(rows, ovcs)`` chunks in global (shard, seq) order."""
        collector = OrderedCollector()
        tasks, results = self._start()
        source = iter(payloads)
        exhausted = False
        dispatched = 0
        #: shard -> _ShardState for every dispatched-but-unfinished shard.
        states: dict[int, _ShardState] = {}
        metrics_on = METRICS.enabled
        t_job = time.perf_counter()
        try:
            while True:
                while (
                    not exhausted
                    and dispatched - collector.emitted_shards
                    < self._max_inflight
                ):
                    try:
                        rows, ovcs = next(source)
                    except StopIteration:
                        exhausted = True
                        break
                    states[dispatched] = _ShardState(rows, ovcs)
                    tasks.put((dispatched, 0, rows, ovcs))
                    if metrics_on:
                        self.phases["ipc_bytes"] += memory.rows_nbytes(rows, ovcs)
                    dispatched += 1
                if exhausted and collector.emitted_shards >= dispatched:
                    break
                inflight = dispatched - collector.emitted_shards
                if metrics_on:
                    METRICS.gauge("pool.inflight_shards").set(inflight)
                # Blocked on results while more payloads wait: that is
                # the in-flight cap pushing back on the feeder.
                stalled = not exhausted and inflight >= self._max_inflight
                t0 = time.perf_counter()
                try:
                    message = results.get(timeout=self._poll_timeout(states))
                except queue.Empty:
                    if stalled:
                        self.backpressure_wait_s += time.perf_counter() - t0
                    yield from self._reap(states, tasks, collector)
                    continue
                if stalled:
                    self.backpressure_wait_s += time.perf_counter() - t0
                yield from self._handle(message, states, tasks, collector)
        finally:
            self.stats = collector.stats
            self.peak_buffered_rows = collector.peak_buffered_rows
            self.telemetry = collector.telemetry_in_shard_order()
            if metrics_on:
                METRICS.counter("pool.backpressure_wait_seconds").inc(
                    self.backpressure_wait_s
                )
                METRICS.gauge("pool.reorder_buffered_rows").set(
                    collector.peak_buffered_rows
                )
            self._shutdown(tasks)
            results.close()
            tasks.close()
            self._tasks = self._results = None
            self._finish_phases(metrics_on, t_job)

    def run_plane(
        self,
        rows: list[tuple],
        ovcs: list[tuple],
        ranges: Iterable[tuple[int, int]],
    ) -> Iterator[Chunk]:
        """Run global row ranges over the shared-memory data plane.

        ``rows``/``ovcs`` are the *whole* input; ``ranges`` are the
        shards' ``[lo, hi)`` bounds in global row order.  The input
        reaches the workers through fork copy-on-write inheritance
        (published via :func:`~repro.parallel.worker.set_plane_input`
        immediately before the pool forks), results come back as flat
        permutation/code words in one shared-memory block, and only
        range tasks and chunk descriptors cross the queues.  Yields the
        same ordered ``(rows, ovcs)`` chunks as :meth:`run`, with rows
        materialized lazily at the emission frontier.

        Requires the ``fork`` start method — under ``spawn`` the module
        globals never reach the child, so callers must use :meth:`run`.
        """
        if self._mp.get_start_method() != "fork":
            raise ValueError(
                "the shared-memory data plane requires the fork start method"
            )
        shards = list(ranges)
        collector = OrderedCollector()
        states: dict[int, _ShardState] = {}
        metrics_on = METRICS.enabled
        t_job = time.perf_counter()
        t0 = time.perf_counter()
        buffers = PlaneBuffers(len(rows))
        self._plane = buffers
        self._plane_rows = rows
        self._plane_ovcs = ovcs
        set_plane_input(rows, ovcs, buffers)
        self.phases["shm_bytes"] = buffers.nbytes
        try:
            tasks, results = self._start()  # forks: workers inherit input
            self.phases["pack_s"] += time.perf_counter() - t0
            # Range tasks are ~a hundred bytes each: feed them all
            # upfront; the in-flight cap exists to bound payload memory,
            # which the plane holds exactly once regardless.
            for index, (lo, hi) in enumerate(shards):
                states[index] = _ShardState(None, None, lo, hi)
                tasks.put((index, 0, lo, hi))
                if metrics_on:
                    self.phases["ipc_bytes"] += _TASK_NBYTES
            try:
                while collector.emitted_shards < len(shards):
                    if metrics_on:
                        METRICS.gauge("pool.inflight_shards").set(
                            len(shards) - collector.emitted_shards
                        )
                    try:
                        message = results.get(timeout=self._poll_timeout(states))
                    except queue.Empty:
                        yield from self._reap(states, tasks, collector)
                        continue
                    yield from self._handle(message, states, tasks, collector)
            finally:
                self.stats = collector.stats
                self.peak_buffered_rows = collector.peak_buffered_rows
                self.telemetry = collector.telemetry_in_shard_order()
                if metrics_on:
                    METRICS.gauge("pool.reorder_buffered_rows").set(
                        collector.peak_buffered_rows
                    )
                self._shutdown(tasks)
                results.close()
                tasks.close()
                self._tasks = self._results = None
        finally:
            clear_plane_input()
            self._plane = None
            self._plane_rows = None
            self._plane_ovcs = None
            buffers.destroy()
            self._finish_phases(metrics_on, t_job)

    def _finish_phases(self, metrics_on: bool, t_job: float) -> None:
        """Close the job's phase ledger and publish the counters."""
        ph = self.phases
        elapsed = time.perf_counter() - t_job
        ph["ipc_s"] = max(0.0, elapsed - ph["pack_s"] - ph["compute_s"])
        if metrics_on:
            METRICS.counter("pool.pack_seconds").inc(ph["pack_s"])
            METRICS.counter("pool.compute_seconds").inc(ph["compute_s"])
            METRICS.counter("pool.ipc_seconds").inc(ph["ipc_s"])
            METRICS.counter("pool.ipc_bytes").inc(ph["ipc_bytes"])

    # ------------------------------------------------------- supervision

    def _poll_timeout(self, states: dict[int, _ShardState]) -> float:
        """Sleep at most until the nearest shard deadline."""
        timeout = POLL_INTERVAL_S
        now = time.monotonic()
        for st in states.values():
            if st.deadline is not None:
                timeout = min(timeout, st.deadline - now)
        return max(0.01, timeout)

    def _handle(
        self,
        message: tuple,
        states: dict[int, _ShardState],
        tasks,
        collector: OrderedCollector,
    ) -> list[Chunk]:
        kind = message[0]
        if kind == "start":
            _, shard, attempt, pid = message
            st = states.get(shard)
            if st is not None and st.attempt == attempt:
                st.pid = pid
                if self._retry.timeout_s is not None:
                    st.deadline = time.monotonic() + self._retry.timeout_s
            return []
        if kind == "error":
            _, shard, attempt, tb = message
            st = states.get(shard)
            if st is None or st.attempt != attempt:
                return []
            return self._fail(shard, st, states, tasks, collector, tb)
        if kind == "planechunk":
            return self._handle_planechunk(message, states, tasks, collector)
        (
            _, shard, attempt, seq, rows, ovcs, last, counters, telemetry,
            timings,
        ) = message
        st = states.get(shard)
        if st is None or st.attempt != attempt:
            return []  # straggler from an abandoned attempt
        st.held.append((seq, rows, ovcs, last, counters, telemetry))
        st.held_rows += len(rows)
        if timings is not None:
            self.phases["pack_s"] += timings.get("pack_s", 0.0)
            self.phases["compute_s"] += timings.get("compute_s", 0.0)
        if METRICS.enabled:
            self.phases["ipc_bytes"] += memory.rows_nbytes(rows, ovcs)
        accountant = memory.current()
        if accountant is not None:
            n_bytes = memory.rows_nbytes(rows, ovcs)
            st.held_bytes += n_bytes
            accountant.charge("pool.reorder", n_bytes)
        if not last:
            return []
        if st.held_rows != st.n_rows:
            return self._fail(
                shard, st, states, tasks, collector,
                f"row-count mismatch: shard {shard} returned {st.held_rows} "
                f"rows for a {st.n_rows}-row payload",
            )
        # Validated: release the attempt's chunks to the collector in
        # sequence order (they arrive ordered from one worker, but a
        # sort keeps that an implementation detail, not a correctness
        # assumption).
        ready: list[Chunk] = []
        for seq, rows, ovcs, last, counters, telemetry in sorted(st.held):
            ready.extend(
                collector.add(
                    ("chunk", shard, seq, rows, ovcs, last, counters, telemetry)
                )
            )
        self._release_state(shard, st, states)
        return ready

    def _handle_planechunk(
        self,
        message: tuple,
        states: dict[int, _ShardState],
        tasks,
        collector: OrderedCollector,
    ) -> list[Chunk]:
        """Validate one data-plane descriptor; release the shard when done.

        The descriptor carries no data — only the global range and a
        CRC32 of the region bytes the worker just wrote.  The driver
        re-hashes the range before trusting it, the same role the
        row-count check plays for pickled chunks (a torn or partial
        write fails the CRC and the shard retries).
        """
        (
            _, shard, attempt, seq, start, stop, crc, last, counters,
            telemetry, timings,
        ) = message
        st = states.get(shard)
        if st is None or st.attempt != attempt:
            return []  # straggler from an abandoned attempt
        if timings is not None:
            self.phases["pack_s"] += timings.get("pack_s", 0.0)
            self.phases["compute_s"] += timings.get("compute_s", 0.0)
        if METRICS.enabled:
            self.phases["ipc_bytes"] += _DESCRIPTOR_NBYTES
        if self._plane.checksum(start, stop) != crc:
            return self._fail(
                shard, st, states, tasks, collector,
                f"checksum mismatch on shard {shard} range [{start}, {stop})",
            )
        st.held.append((seq, start, stop, last, counters, telemetry))
        st.held_rows += stop - start
        accountant = memory.current()
        if accountant is not None:
            st.held_bytes += PlaneSlice.NBYTES
            accountant.charge("pool.reorder", PlaneSlice.NBYTES)
        if not last:
            return []
        held = sorted(st.held)
        contiguous = all(
            rec[1] == (held[i - 1][2] if i else st.lo)
            for i, rec in enumerate(held)
        )
        if st.held_rows != st.n_rows or not contiguous or held[-1][2] != st.hi:
            return self._fail(
                shard, st, states, tasks, collector,
                f"range mismatch: shard {shard} covered {st.held_rows} rows "
                f"of [{st.lo}, {st.hi})",
            )
        ready: list[Chunk] = []
        for seq, start, stop, last, counters, telemetry in held:
            chunk = PlaneSlice(
                self._plane, self._plane_rows, start, stop, self.phases
            )
            ready.extend(
                collector.add(
                    ("chunk", shard, seq, chunk, None, last, counters, telemetry)
                )
            )
        self._release_state(shard, st, states)
        return ready

    def _reap(
        self,
        states: dict[int, _ShardState],
        tasks,
        collector: OrderedCollector,
    ) -> list[Chunk]:
        """Liveness and deadline reconciliation (the empty-poll path)."""
        ready: list[Chunk] = []
        dead = [proc for proc in self._procs if not proc.is_alive()]
        for proc in dead:
            self._procs.remove(proc)
            owned = [
                (shard, st)
                for shard, st in states.items()
                if st.pid == proc.pid
            ]
            if not owned:
                # The worker died before its start announcement reached
                # us; it may have taken the oldest not-yet-started task
                # with it.  Re-dispatching that shard is always safe:
                # if the original task survives in the queue, its
                # results carry a stale attempt number and are dropped.
                unstarted = [
                    (shard, st) for shard, st in states.items() if st.pid is None
                ]
                owned = unstarted[:1]
            self._spawn_worker()
            for shard, st in owned:
                ready.extend(
                    self._fail(
                        shard, st, states, tasks, collector,
                        f"worker pid {proc.pid} died (exit {proc.exitcode})",
                    )
                )
        now = time.monotonic()
        for shard, st in list(states.items()):
            if st.deadline is None or now <= st.deadline:
                continue
            hung = next((p for p in self._procs if p.pid == st.pid), None)
            if hung is not None:
                hung.terminate()
                hung.join(timeout=5)
                self._procs.remove(hung)
                self._spawn_worker()
            ready.extend(
                self._fail(
                    shard, st, states, tasks, collector,
                    f"shard {shard} timed out after {self._retry.timeout_s}s",
                )
            )
        return ready

    def _fail(
        self,
        shard: int,
        st: _ShardState,
        states: dict[int, _ShardState],
        tasks,
        collector: OrderedCollector,
        reason: str,
    ) -> list[Chunk]:
        """One attempt failed: discard its output, retry or quarantine."""
        self._discard_held(st)
        st.pid = None
        st.deadline = None
        st.failures += 1
        plane = st.rows is None
        if st.failures <= self._retry.retries:
            st.attempt += 1
            self.retried_shards += 1
            if METRICS.enabled:
                METRICS.counter("pool.shard_retries").inc()
            if LOG.enabled:
                LOG.event(
                    "pool.shard_retry",
                    shard=shard,
                    attempt=st.attempt,
                    reason=reason.splitlines()[0][:200],
                )
            with TRACER.span(
                "pool.shard_retry",
                shard=shard,
                attempt=st.attempt,
                reason=reason.splitlines()[0][:200],
            ):
                if plane:
                    # Identity placement makes the retry self-cleaning:
                    # the new attempt overwrites the same [lo, hi)
                    # region, and stale descriptors are dropped by
                    # attempt number before anything reads it.
                    tasks.put((shard, st.attempt, st.lo, st.hi))
                else:
                    tasks.put((shard, st.attempt, st.rows, st.ovcs))
            return []
        # Quarantine: the shard failed every pooled attempt.  Execute it
        # serially in the driver — outside the workers, where injected
        # faults (and most classes of environmental failure) cannot
        # reach — so the query degrades instead of dying.
        self.degraded_shards += 1
        if METRICS.enabled:
            METRICS.counter("pool.shard_degraded").inc()
        if LOG.enabled:
            LOG.event(
                "pool.shard_quarantined",
                shard=shard,
                rows=st.n_rows,
                failures=st.failures,
                reason=reason.splitlines()[0][:200],
            )
        in_rows = self._plane_rows[st.lo : st.hi] if plane else st.rows
        in_ovcs = self._plane_ovcs[st.lo : st.hi] if plane else st.ovcs
        with TRACER.span(
            "pool.shard_degraded",
            shard=shard,
            rows=st.n_rows,
            reason=reason.splitlines()[0][:200],
        ):
            try:
                t0 = time.perf_counter()
                out_rows, out_ovcs, counters = execute_shard(
                    in_rows, in_ovcs, self._ctx
                )
                self.phases["compute_s"] += time.perf_counter() - t0
            except BaseException:
                raise ShardError(shard, traceback.format_exc()) from None
        n = len(out_rows)
        step = self._chunk_rows
        n_chunks = max(1, -(-n // step))
        ready: list[Chunk] = []
        for seq in range(n_chunks):
            lo, hi = seq * step, min(n, (seq + 1) * step)
            last = seq == n_chunks - 1
            ready.extend(
                collector.add(
                    (
                        "chunk", shard, seq, out_rows[lo:hi], out_ovcs[lo:hi],
                        last, counters if last else None, None,
                    )
                )
            )
        self._release_state(shard, st, states)
        return ready

    def _discard_held(self, st: _ShardState) -> None:
        st.held.clear()
        st.held_rows = 0
        if st.held_bytes:
            accountant = memory.current()
            if accountant is not None:
                accountant.release("pool.reorder", st.held_bytes)
            st.held_bytes = 0

    def _release_state(
        self, shard: int, st: _ShardState, states: dict[int, _ShardState]
    ) -> None:
        if st.held_bytes:
            accountant = memory.current()
            if accountant is not None:
                accountant.release("pool.reorder", st.held_bytes)
            st.held_bytes = 0
        st.held.clear()
        st.held_rows = 0
        del states[shard]
