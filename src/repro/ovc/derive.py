"""Deriving offset-value codes for an already-sorted table.

Given rows in sort order, each row's code is computed against its
predecessor: the offset is the length of the shared key prefix and the
value is the row's first differing key column (Figure 1 / Figure 5 of
the paper).  The first row is coded as ``(0, first key column)`` — as
if compared against an imaginary lowest row that differs in column 0.

Derivation is exactly the ``x`` part of the paper's comparison bound:
the total number of ``==`` column comparisons performed here equals the
compression opportunity by prefix truncation.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..model import Table, normalize_value
from .stats import ComparisonStats


def derive_ovcs(
    rows: Sequence[tuple],
    key_positions: Sequence[int],
    directions: Sequence[bool] | None = None,
    stats: ComparisonStats | None = None,
) -> list[tuple]:
    """Paper-form ``(offset, value)`` codes for sorted ``rows``.

    ``key_positions`` are the physical column positions of the sort key,
    in key order.  ``directions`` gives per-key-column ascending flags
    (all ascending when omitted); values of descending columns are
    normalized so that the stored code values order ascending.

    Raises ``ValueError`` if the rows are not actually sorted.
    """
    arity = len(key_positions)
    if directions is None:
        directions = (True,) * arity
    if len(directions) != arity:
        raise ValueError("directions length must match key arity")
    all_ascending = all(directions)

    ovcs: list[tuple] = []
    if not rows:
        return ovcs

    def key_value(row: tuple, k: int) -> Any:
        v = row[key_positions[k]]
        if all_ascending:
            return v
        return normalize_value(v, directions[k])

    first = rows[0]
    ovcs.append((0, key_value(first, 0)))
    prev = first
    for row in rows[1:]:
        offset = 0
        while offset < arity:
            if stats is not None:
                stats.column_comparisons += 1
            a = key_value(prev, offset)
            b = key_value(row, offset)
            if a != b:
                if b < a:
                    raise ValueError(
                        f"rows not sorted: {prev!r} precedes {row!r} "
                        f"but differs at key column {offset}"
                    )
                break
            offset += 1
        if offset == arity:
            ovcs.append((arity, 0))
        else:
            ovcs.append((offset, key_value(row, offset)))
        prev = row
    return ovcs


def derive_table_ovcs(
    table: Table, stats: ComparisonStats | None = None
) -> list[tuple]:
    """Derive codes for a :class:`~repro.model.Table` with a sort spec."""
    if table.sort_spec is None:
        raise ValueError("table has no sort spec; cannot derive codes")
    positions = table.sort_spec.positions(table.schema)
    return derive_ovcs(table.rows, positions, table.sort_spec.directions, stats)


def verify_ovcs(
    rows: Sequence[tuple],
    ovcs: Sequence[tuple],
    key_positions: Sequence[int],
    directions: Sequence[bool] | None = None,
) -> bool:
    """True iff ``ovcs`` equal freshly derived codes for ``rows``.

    Used by tests to confirm that code *adjustment* (the paper's novel
    arithmetic) produces exactly what full derivation would.
    """
    expected = derive_ovcs(rows, key_positions, directions)
    if len(expected) != len(ovcs):
        return False
    return all(tuple(a) == tuple(b) for a, b in zip(expected, ovcs))


def project_ovcs(
    ovcs: Sequence[tuple], new_arity: int
) -> list[tuple]:
    """Map codes for sort key ``K`` to codes for a prefix of ``K``.

    Table 1 case 0 (e.g. ``A,B -> A``): data sorted on the longer key is
    already sorted on the prefix, and the codes translate without any
    column comparison — a row differing only beyond the prefix becomes
    an exact duplicate under the shorter key.
    """
    projected: list[tuple] = []
    for offset, value in ovcs:
        if offset >= new_arity:
            projected.append((new_arity, 0))
        else:
            projected.append((offset, value))
    return projected


def segment_boundaries(
    ovcs: Sequence[tuple], prefix_len: int
) -> list[int]:
    """Indices of segment-first rows: offsets below ``prefix_len``.

    This is the paper's comparison-free segment detection — only the
    cached codes are inspected, never the column values.
    """
    return [i for i, (offset, _value) in enumerate(ovcs) if offset < prefix_len]


def rle_lengths_from_ovcs(
    ovcs: Sequence[tuple], arity: int
) -> list[list[int]]:
    """Run-length boundaries per leading sort column, from codes alone.

    Returns, for each key column ``k``, the list of row indices at which
    a new run-length-encoded run of that column starts.  Equals the
    prefix-truncation structure (Figure 1, second vs third block).
    """
    starts: list[list[int]] = [[] for _ in range(arity)]
    for i, (offset, _value) in enumerate(ovcs):
        for k in range(min(offset, arity), arity):
            starts[k].append(i)
    return starts
