"""Normalized keys: order-preserving byte encodings and byte-level OVCs.

The paper emphasizes that prefix truncation and offset-value coding
"work with lists of column values, i.e., database rows, lists of
characters, i.e., text strings, and lists of bytes, e.g., normalized
keys".  A *normalized key* encodes a row's entire sort key into one
byte string whose plain ``memcmp`` order equals the key order — the
classic technique that makes comparisons branch-free and lets OVCs
operate at byte granularity, exactly like ``memcmp()`` with starting
offsets.

Encodings (all order-preserving under bytewise comparison):

* integers — 9 bytes: tag ``0x01`` + 64-bit big-endian with the sign
  bit flipped;
* floats — 9 bytes: tag ``0x01`` + IEEE 754 bits, sign-massaged;
  (a column must be homogeneously int or float, as in a typed schema —
  the two numeric encodings do not interleave order-preservingly);
* strings/bytes — tag ``0x02`` + payload with ``0x00 -> 0x00 0xFF``
  escaping + ``0x00 0x00`` terminator (shorter strings sort first);
* ``None`` — single tag byte ``0x00`` (nulls first);
* descending columns — every encoded byte complemented.

Byte-level codes use the arity-free ascending form ``(-offset, byte)``:
lower wins, exact duplicates encode as ``(-length, -1)``.
"""

from __future__ import annotations

import math
import struct
from typing import Sequence

from ..model import Schema, SortSpec
from .stats import ComparisonStats

_NULL_TAG = b"\x00"
_NUMBER_TAG = b"\x01"
_STRING_TAG = b"\x02"


def _encode_int(value: int) -> bytes:
    if not -(1 << 63) <= value < (1 << 63):
        raise OverflowError(f"integer {value} exceeds 64 bits")
    return _NUMBER_TAG + struct.pack(">Q", value + (1 << 63))


def _encode_float(value: float) -> bytes:
    if math.isnan(value):
        raise ValueError("NaN has no place in a sort key")
    if value == 0.0:
        value = 0.0  # collapse -0.0: equal values must encode equally
    bits = struct.unpack(">Q", struct.pack(">d", value))[0]
    if bits & (1 << 63):
        bits ^= (1 << 64) - 1  # negative: flip everything
    else:
        bits ^= 1 << 63  # positive: flip the sign bit
    return _NUMBER_TAG + struct.pack(">Q", bits)


def _encode_text(payload: bytes) -> bytes:
    return _STRING_TAG + payload.replace(b"\x00", b"\x00\xff") + b"\x00\x00"


def encode_value(value, ascending: bool = True) -> bytes:
    """Order-preserving byte encoding of one column value."""
    if value is None:
        encoded = _NULL_TAG
    elif isinstance(value, bool):
        encoded = _encode_int(int(value))
    elif isinstance(value, int):
        encoded = _encode_int(value)
    elif isinstance(value, float):
        encoded = _encode_float(value)
    elif isinstance(value, str):
        encoded = _encode_text(value.encode("utf-8"))
    elif isinstance(value, (bytes, bytearray)):
        encoded = _encode_text(bytes(value))
    else:
        raise TypeError(f"cannot normalize {type(value).__name__} values")
    if ascending:
        return encoded
    return bytes(b ^ 0xFF for b in encoded)


class NormalizedKeyCodec:
    """Encode rows' sort keys into ``memcmp``-ordered byte strings."""

    def __init__(self, schema: Schema, spec: SortSpec) -> None:
        self.schema = schema
        self.spec = spec
        self._positions = spec.positions(schema)
        self._directions = spec.directions

    def encode(self, row: tuple) -> bytes:
        parts = [
            encode_value(row[pos], asc)
            for pos, asc in zip(self._positions, self._directions)
        ]
        return b"".join(parts)

    def encode_all(self, rows: Sequence[tuple]) -> list[bytes]:
        return [self.encode(row) for row in rows]


# ----------------------------------------------------------------------
# Byte-level offset-value codes: memcmp with starting offsets.

#: Byte code of an exact duplicate of its base (lowest possible code).
def duplicate_byte_code(length: int) -> tuple:
    return (-length, -1)


def derive_byte_ovcs(
    keys: Sequence[bytes], stats: ComparisonStats | None = None
) -> list[tuple]:
    """Ascending byte codes ``(-offset, byte)`` for sorted byte strings.

    The first key is coded ``(0, first byte)`` (or a duplicate code for
    the empty string); each later key against its predecessor.
    """
    codes: list[tuple] = []
    prev: bytes | None = None
    for key in keys:
        if prev is None:
            codes.append((0, key[0]) if key else duplicate_byte_code(0))
        else:
            codes.append(form_byte_code(key, prev, stats))
            if codes[-1][1] == -2:
                raise ValueError("byte strings not sorted")
        prev = key
    return codes


def form_byte_code(
    key: bytes, base: bytes, stats: ComparisonStats | None = None
) -> tuple:
    """Code of ``key`` relative to ``base`` (must satisfy base <= key).

    Returns the sentinel value part ``-2`` when ``key < base`` so that
    callers validating sortedness can detect it.
    """
    n = min(len(key), len(base))
    offset = 0
    while offset < n and key[offset] == base[offset]:
        offset += 1
    if stats is not None:
        stats.column_comparisons += offset + (1 if offset < n else 0)
    if offset == len(key) and offset == len(base):
        return duplicate_byte_code(offset)
    if offset == len(base):
        return (-offset, key[offset])
    if offset == len(key) or key[offset] < base[offset]:
        return (-offset, -2)
    return (-offset, key[offset])


def make_byte_entry_comparator(stats: ComparisonStats):
    """Tournament-tree comparator over normalized-key entries.

    Entries carry ``keys`` = the byte string and ``code`` = an
    ascending byte code; the contract matches
    :func:`repro.ovc.compare.make_ovc_entry_comparator`, so the same
    :class:`~repro.sorting.tournament.TreeOfLosers` merges byte-keyed
    runs — sorting and merging entire rows as single ``memcmp``-ordered
    byte strings.
    """

    def compare(a, b) -> bool:
        if a.row is None or b.row is None:
            if a.row is None and b.row is None:
                return a.run <= b.run
            return b.row is None
        stats.row_comparisons += 1
        relation, loser_code = compare_bytes_resume(
            a.keys, a.code, b.keys, b.code, stats
        )
        if relation < 0:
            b.code = loser_code
            return True
        if relation > 0:
            a.code = loser_code
            return False
        a_wins = a.run <= b.run
        (b if a_wins else a).code = loser_code
        return a_wins

    return compare


def compare_bytes_resume(
    key_a: bytes,
    code_a: tuple,
    key_b: bytes,
    code_b: tuple,
    stats: ComparisonStats,
) -> tuple[int, tuple]:
    """OVC comparison of two byte strings coded against a common base.

    Returns ``(relation, loser_code)`` with the same contract as
    :func:`repro.ovc.compare.compare_resume` — the loser's code is valid
    relative to the winner; equal strings return relation 0 with a
    duplicate code.  This is ``memcmp()`` with a starting offset.
    """
    stats.ovc_comparisons += 1
    if code_a != code_b:
        if code_a < code_b:
            return -1, code_b
        return 1, code_a
    offset = -code_a[0]
    i = offset + 1 if code_a[1] >= 0 else offset
    n = min(len(key_a), len(key_b))
    while i < n:
        stats.column_comparisons += 1
        ba, bb = key_a[i], key_b[i]
        if ba != bb:
            if ba < bb:
                return -1, (-i, bb)
            return 1, (-i, ba)
        i += 1
    if len(key_a) == len(key_b):
        return 0, duplicate_byte_code(len(key_a))
    if len(key_a) < len(key_b):
        return -1, (-len(key_a), key_b[len(key_a)])
    return 1, (-len(key_b), key_a[len(key_b)])
