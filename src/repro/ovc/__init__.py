"""Offset-value codes: codecs, derivation, and instrumented comparisons.

An offset-value code (OVC) caches the outcome of a row comparison: the
pair ``(offset, value)`` records that a row agrees with some *base* row
on its first ``offset`` sort columns and carries ``value`` in the first
differing column.  OVCs are order-preserving surrogate keys — two rows
coded against the same base can often be ordered by comparing their
codes alone, and the loser of such a comparison leaves it with a valid
code relative to the winner, so comparison effort is never repeated.
"""

from .stats import ComparisonStats
from .codes import (
    DUPLICATE,
    FENCE,
    ascending_code,
    ascending_integer_code,
    code_to_ovc,
    descending_integer_code,
    max_merge,
    ovc_to_code,
)
from .derive import derive_ovcs, derive_table_ovcs, verify_ovcs
from .compare import (
    compare_plain,
    compare_resume,
    form_code,
    make_ovc_entry_comparator,
    make_plain_entry_comparator,
)

__all__ = [
    "ComparisonStats",
    "DUPLICATE",
    "FENCE",
    "ascending_code",
    "ascending_integer_code",
    "code_to_ovc",
    "descending_integer_code",
    "max_merge",
    "ovc_to_code",
    "derive_ovcs",
    "derive_table_ovcs",
    "verify_ovcs",
    "compare_plain",
    "compare_resume",
    "form_code",
    "make_ovc_entry_comparator",
    "make_plain_entry_comparator",
]
