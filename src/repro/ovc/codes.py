"""Offset-value code encodings and code arithmetic.

Two encodings appear in the paper's Figure 1:

* **descending** codes: ``offset * domain + (domain - value)`` — the
  *higher* code wins a comparison; an exact duplicate of the base row
  encodes as ``arity * domain + domain`` (the example's ``500``).
* **ascending** codes: ``(arity - offset) * domain + value`` — the
  *lower* code wins; an exact duplicate encodes as ``0``.

This library's canonical runtime form is the *ascending tuple code*
``(arity - offset, value)``: plain tuple comparison orders it exactly
like the ascending integer code but needs no domain bound and works for
strings as well as integers.  Exact duplicates use ``(0, 0)``; the fence
code for exhausted merge inputs compares greater than every real code.

The **max-theorem** (Conner's corollary; see also Graefe & Do, EDBT
2023): for rows ``x <= y <= z`` with ascending codes, ::

    code(z | x) = max(code(z | y), code(y | x))

It lets the merge logic re-base saved codes without touching column
values; :func:`max_merge` implements it.
"""

from __future__ import annotations

import math
from typing import Any

#: Ascending tuple code of an exact duplicate of the base row.
DUPLICATE: tuple = (0, 0)

#: Code that loses to every real code (exhausted merge input).  The
#: first component dominates comparison, so the payload never matters.
FENCE: tuple = (math.inf, 0)


def ascending_code(offset: int, value: Any, arity: int) -> tuple:
    """Paper-form ``(offset, value)`` -> ascending tuple code."""
    if offset >= arity:
        return DUPLICATE
    return (arity - offset, value)


def ovc_to_code(ovc: tuple, arity: int) -> tuple:
    """Alias of :func:`ascending_code` taking the pair directly."""
    offset, value = ovc
    if offset >= arity:
        return DUPLICATE
    return (arity - offset, value)


def code_to_ovc(code: tuple, arity: int) -> tuple:
    """Ascending tuple code -> paper-form ``(offset, value)``."""
    remaining, value = code
    if remaining == 0:
        return (arity, 0)
    if remaining is math.inf:
        raise ValueError("fence codes have no offset-value form")
    return (arity - remaining, value)


def max_merge(code_yx: tuple, code_zy: tuple) -> tuple:
    """Chain two ascending codes: ``code(z|x)`` from ``code(y|x)``,
    ``code(z|y)`` for ``x <= y <= z`` (the max-theorem)."""
    return code_yx if code_yx > code_zy else code_zy


def ascending_integer_code(
    offset: int, value: int, arity: int, domain: int
) -> int:
    """The paper's ascending integer encoding (Figure 1, right block).

    ``domain`` is the per-column value domain size; values must satisfy
    ``0 <= value < domain``.  Lower codes win comparisons; a duplicate
    of the base row encodes as ``0``.
    """
    if offset >= arity:
        return 0
    if not 0 <= value < domain:
        raise ValueError(f"value {value} outside domain [0, {domain})")
    return (arity - offset) * domain + value


def descending_integer_code(
    offset: int, value: int, arity: int, domain: int
) -> int:
    """The paper's descending integer encoding (Figure 1, fourth block).

    Higher codes win comparisons; a duplicate of the base row encodes as
    ``arity * domain + domain`` (``500`` in the paper's example with
    arity 4 and domain 100).
    """
    if offset >= arity:
        return arity * domain + domain
    if not 0 <= value < domain:
        raise ValueError(f"value {value} outside domain [0, {domain})")
    return offset * domain + (domain - value)


def decode_ascending_integer(code: int, arity: int, domain: int) -> tuple:
    """Invert :func:`ascending_integer_code` -> ``(offset, value)``."""
    if code == 0:
        return (arity, 0)
    remaining, value = divmod(code, domain)
    return (arity - remaining, value)


def decode_descending_integer(code: int, arity: int, domain: int) -> tuple:
    """Invert :func:`descending_integer_code` -> ``(offset, value)``."""
    if code == arity * domain + domain:
        return (arity, 0)
    offset, complement = divmod(code, domain)
    return (offset, domain - complement)
