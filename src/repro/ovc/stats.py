"""Comparison-effort instrumentation.

The paper's Figure 10 distinguishes *column value comparisons* (actual
comparisons of column values) from comparisons of offset-value codes,
which are single integer/tuple comparisons.  Every comparator in this
library threads a :class:`ComparisonStats` and bumps the matching
counter, so experiments can report machine-independent work measures.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class ComparisonStats:
    """Counters for sorting and merging effort.

    Attributes
    ----------
    row_comparisons:
        Number of row-vs-row decisions (each may involve zero or more
        column comparisons when offset-value codes decide early).
    ovc_comparisons:
        Comparisons of offset-value codes (cheap fixed-size compares).
    column_comparisons:
        Three-way comparisons of individual column values — the paper's
        headline metric.
    key_extractions:
        Column values copied out of rows to form new codes.
    rows_moved:
        Rows emitted by a sort, merge, or scan operator.
    """

    row_comparisons: int = 0
    ovc_comparisons: int = 0
    column_comparisons: int = 0
    key_extractions: int = 0
    rows_moved: int = 0

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def snapshot(self) -> "ComparisonStats":
        return ComparisonStats(**self.as_dict())

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __add__(self, other: "ComparisonStats") -> "ComparisonStats":
        return ComparisonStats(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def __sub__(self, other: "ComparisonStats") -> "ComparisonStats":
        return ComparisonStats(
            **{
                f.name: getattr(self, f.name) - getattr(other, f.name)
                for f in fields(self)
            }
        )

    def merge(self, other: "ComparisonStats") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def __str__(self) -> str:
        parts = ", ".join(f"{k}={v:,}" for k, v in self.as_dict().items() if v)
        return f"ComparisonStats({parts or 'empty'})"
