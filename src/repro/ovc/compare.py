"""Instrumented row comparisons, with and without offset-value codes.

The central routine is :func:`compare_resume`: given two rows whose
ascending tuple codes are relative to the *same base row*, it decides
their order.  Unequal codes decide immediately (one cheap tuple
comparison, no column values touched) and — by the order-preserving
property — the loser's code is already valid relative to the winner.
Equal codes mean the rows agree with each other through the code's
offset *plus one* column, so column-by-column comparison resumes after
that shared prefix, and the fresh comparison effort is cached in a new
code for the loser.  This mirrors ``strcmp()``/``memcmp()`` with
starting offsets, as the paper describes.

All comparators count their work in a :class:`ComparisonStats`.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from .codes import DUPLICATE, FENCE
from .stats import ComparisonStats


def compare_plain(
    keys_a: Sequence, keys_b: Sequence, stats: ComparisonStats
) -> int:
    """Lexicographic three-way comparison counting column comparisons."""
    stats.row_comparisons += 1
    for va, vb in zip(keys_a, keys_b):
        stats.column_comparisons += 1
        if va != vb:
            return -1 if va < vb else 1
    return 0


def compare_plain_prefix(
    keys_a: Sequence,
    keys_b: Sequence,
    start: int,
    stop: int,
    stats: ComparisonStats,
) -> int:
    """Three-way comparison over key positions ``[start, stop)``."""
    stats.row_comparisons += 1
    for i in range(start, stop):
        stats.column_comparisons += 1
        va, vb = keys_a[i], keys_b[i]
        if va != vb:
            return -1 if va < vb else 1
    return 0


def form_code(
    keys_new: Sequence,
    keys_base: Sequence,
    arity: int,
    stats: ComparisonStats,
    start: int = 0,
) -> tuple[int, tuple]:
    """Full comparison of a fresh row against a base, forming its code.

    This is the mainframe CFC ("compare and form codeword") operation:
    returns ``(relation, code)`` where relation is -1/0/1 for the new
    row vs. the base and ``code`` is the new row's ascending tuple code
    relative to the base (``DUPLICATE`` when equal).
    """
    stats.row_comparisons += 1
    for i in range(start, arity):
        stats.column_comparisons += 1
        vn, vb = keys_new[i], keys_base[i]
        if vn != vb:
            code = (arity - i, vn)
            return (-1 if vn < vb else 1), code
    return 0, DUPLICATE


def compare_resume(
    keys_a: Sequence,
    code_a: tuple,
    keys_b: Sequence,
    code_b: tuple,
    arity: int,
    stats: ComparisonStats,
    limit: int | None = None,
) -> tuple[int, tuple | None]:
    """OVC comparison of two rows coded against the same base.

    Returns ``(relation, loser_code)``:

    * relation ``-1``/``1``: row a / row b wins; ``loser_code`` is the
      loser's (possibly unchanged) code relative to the winner.
    * relation ``0`` with ``loser_code == DUPLICATE``: the rows are
      equal through all ``arity`` key columns.
    * relation ``0`` with ``loser_code is None``: the rows are equal
      through the restricted region ``[0, limit)`` — the caller supplies
      domain knowledge for what lies beyond (used by the order-
      modification merge, which never compares infix columns).
    """
    stats.ovc_comparisons += 1
    if code_a != code_b:
        if code_a < code_b:
            return -1, code_b
        return 1, code_a
    remaining = code_a[0]
    if remaining == 0:
        return 0, DUPLICATE
    if remaining is math.inf:
        # Two fences: both inputs exhausted.
        return 0, FENCE
    # Equal codes: the rows agree with each other on the code's offset
    # plus the coded column itself; resume right after it.
    i = arity - remaining + 1
    stop = arity if limit is None else limit
    while i < stop:
        stats.column_comparisons += 1
        va, vb = keys_a[i], keys_b[i]
        if va != vb:
            if va < vb:
                return -1, (arity - i, vb)
            return 1, (arity - i, va)
        i += 1
    if stop == arity:
        return 0, DUPLICATE
    return 0, None


def make_ovc_entry_comparator(
    arity: int,
    stats: ComparisonStats,
    limit: int | None = None,
    on_restricted_tie: Callable | None = None,
):
    """Comparator over tournament-tree entries using offset-value codes.

    Entries are duck-typed with attributes ``code`` (ascending tuple
    code), ``keys`` (projected, normalized key tuple) and ``run`` (input
    index, used for the stable tie-break).  The comparator returns
    ``True`` when the first entry wins and stores the loser's refreshed
    code back into the losing entry.

    ``limit``/``on_restricted_tie`` implement the order-modification
    merge: comparisons stop at the infix boundary, and ties there are
    resolved by run index with the loser's code derived from saved
    run-head codes instead of column comparisons.

    Entries whose ``code`` is ``None`` carry no cached comparison (fresh
    rows entering run generation); the comparison falls back to column
    values and *forms* the loser's code — the CFC operation.  Fence
    entries (``row is None``) lose against everything without counting.
    """

    def compare(a, b) -> bool:
        if a.row is None or b.row is None:
            if a.row is None and b.row is None:
                return a.run <= b.run
            return b.row is None
        stats.row_comparisons += 1
        if a.code is None or b.code is None:
            relation, code_ba = form_code(b.keys, a.keys, arity, stats)
            if relation > 0:
                b.code = code_ba
                return True
            if relation < 0:
                # First difference is symmetric: a's code relative to b
                # reuses the offset found while coding b against a.
                remaining = code_ba[0]
                a.code = (remaining, a.keys[arity - remaining])
                return False
            a_wins = a.run <= b.run
            (b if a_wins else a).code = DUPLICATE
            return a_wins
        relation, loser_code = compare_resume(
            a.keys, a.code, b.keys, b.code, arity, stats, limit
        )
        if relation < 0:
            b.code = loser_code
            return True
        if relation > 0:
            a.code = loser_code
            return False
        # Tie: stable winner is the lower run index.
        a_wins = a.run <= b.run
        loser = b if a_wins else a
        if loser_code is None:
            # Tie only within the restricted region; domain logic
            # supplies the loser's code (e.g. derived infix codes).
            loser.code = on_restricted_tie(a, b, a_wins)
        else:
            loser.code = loser_code
        return a_wins

    return compare


def make_plain_entry_comparator(
    arity: int,
    stats: ComparisonStats,
    start: int = 0,
):
    """Comparator over tree entries without offset-value codes.

    Used by the paper's baselines: every decision compares column values
    lexicographically over key positions ``[start, arity)``; ties break
    by run index (stable merge).  Offset-value codes are never consulted.
    """

    def compare(a, b) -> bool:
        if a.row is None or b.row is None:
            if a.row is None and b.row is None:
                return a.run <= b.run
            return b.row is None
        relation = compare_plain_prefix(a.keys, b.keys, start, arity, stats)
        if relation < 0:
            return True
        if relation > 0:
            return False
        return a.run <= b.run

    return compare
