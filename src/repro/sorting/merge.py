"""K-way merging of sorted runs, with or without offset-value codes.

A *run* here is a pair ``(rows, ovcs)``: rows in sort order plus
paper-form ``(offset, value)`` codes where each row is coded against
its run predecessor and the run's first row against a base common to
all runs (the convention produced by :mod:`repro.ovc.derive` and by run
generation).  Merging with codes re-uses all of that cached comparison
effort; merging without codes is the instrumented baseline.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..model import Table, normalize_value
from ..ovc.codes import code_to_ovc, ovc_to_code
from ..ovc.compare import (
    form_code,
    make_ovc_entry_comparator,
    make_plain_entry_comparator,
)
from ..ovc.stats import ComparisonStats
from .tournament import Entry, TreeOfLosers


def _key_projector(key_positions: Sequence[int], directions: Sequence[bool] | None):
    """Build a row -> normalized key tuple projector."""
    positions = tuple(key_positions)
    if directions is None or all(directions):
        return lambda row: tuple(row[p] for p in positions)
    pairs = tuple(zip(positions, directions))
    return lambda row: tuple(normalize_value(row[p], asc) for p, asc in pairs)


def _run_entries(
    rows: Sequence[tuple],
    ovcs: Sequence[tuple] | None,
    run: int,
    arity: int,
    project,
) -> Iterator[Entry]:
    if ovcs is None:
        for row in rows:
            yield Entry(project(row), None, row, run)
    else:
        for row, ovc in zip(rows, ovcs):
            yield Entry(project(row), ovc_to_code(ovc, arity), row, run)


def kway_merge(
    runs: Sequence[tuple],
    key_positions: Sequence[int],
    stats: ComparisonStats,
    directions: Sequence[bool] | None = None,
    use_ovc: bool = True,
) -> tuple[list[tuple], list[tuple] | None]:
    """Merge sorted runs; returns ``(rows, ovcs)``.

    ``runs`` is a sequence of ``(rows, ovcs)`` pairs; ``ovcs`` entries
    may be None when merging without codes (then ``use_ovc`` must be
    False).  With codes, the output codes come straight from the
    tournament tree — each popped winner's code is relative to the
    previous winner, which is exactly the output predecessor.
    """
    arity = len(key_positions)
    project = _key_projector(key_positions, directions)
    if use_ovc:
        compare = make_ovc_entry_comparator(arity, stats)
    else:
        compare = make_plain_entry_comparator(arity, stats)

    inputs = [
        _run_entries(rows, ovcs if use_ovc else None, i, arity, project)
        for i, (rows, ovcs) in enumerate(runs)
    ]
    tree = TreeOfLosers(inputs, compare)

    out_rows: list[tuple] = []
    out_ovcs: list[tuple] | None = [] if use_ovc else None
    prev_keys: tuple | None = None
    for entry in tree:
        out_rows.append(entry.row)
        stats.rows_moved += 1
        if use_ovc:
            if prev_keys is None:
                # The overall first row is coded against the imaginary
                # lowest row: offset 0, value of the first key column.
                out_ovcs.append((0, entry.keys[0]))
            elif entry.code is None:
                # A fresh entry that never lost a match (possible only
                # when inputs supplied code-less entries); form its
                # output code against the previous output row.
                _rel, code = form_code(entry.keys, prev_keys, arity, stats)
                out_ovcs.append(code_to_ovc(code, arity))
            else:
                out_ovcs.append(code_to_ovc(entry.code, arity))
            prev_keys = entry.keys
    return out_rows, out_ovcs


def merge_tables(
    tables: Sequence[Table],
    stats: ComparisonStats | None = None,
    use_ovc: bool = True,
) -> Table:
    """Merge tables sharing a schema and sort spec into one sorted table."""
    if not tables:
        raise ValueError("need at least one table to merge")
    first = tables[0]
    if first.sort_spec is None:
        raise ValueError("tables must carry a sort spec")
    for t in tables[1:]:
        if t.schema != first.schema or t.sort_spec != first.sort_spec:
            raise ValueError("all tables must share schema and sort spec")
    stats = stats if stats is not None else ComparisonStats()
    positions = first.sort_spec.positions(first.schema)
    directions = first.sort_spec.directions
    runs = [(t.rows, t.with_ovcs().ovcs if use_ovc else None) for t in tables]
    rows, ovcs = kway_merge(runs, positions, stats, directions, use_ovc)
    return Table(first.schema, rows, first.sort_spec, ovcs)
