"""External merge sort with spill accounting and phase-split statistics.

The classic pipeline: run generation fills memory and emits sorted
runs to (simulated) storage; merge steps combine up to ``fan_in`` runs
at a time until one run remains.  Statistics are kept separately for
the two phases because the paper's hypothesis 3 — *most comparisons
happen during run generation* — and hypothesis 7 — *pre-existing runs
save the run-generation I/O* — are phase-level claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..exec import memory
from ..obs import METRICS, TRACER
from ..ovc.stats import ComparisonStats
from ..storage.pages import IoStats, PageManager
from .merge import kway_merge
from .run_generation import (
    generate_runs_load_sort,
    generate_runs_replacement_selection,
)


@dataclass
class SortResult:
    """Outcome of an external sort: data plus a work breakdown."""

    rows: list[tuple]
    ovcs: list[tuple] | None
    run_generation_stats: ComparisonStats
    merge_stats: ComparisonStats
    io: IoStats
    initial_runs: int
    merge_levels: int

    @property
    def total_stats(self) -> ComparisonStats:
        return self.run_generation_stats + self.merge_stats


class ExternalMergeSort:
    """Configurable external merge sort.

    Parameters
    ----------
    memory_capacity:
        Rows that fit in sort memory; inputs at most this size sort
        internally with no spill.
    fan_in:
        Maximum runs merged per merge step (graceful degradation to
        multiple merge levels beyond that).
    run_generation:
        ``"replacement"`` (tree-of-losers replacement selection, runs
        about twice memory on random input) or ``"load_sort"``.
    use_ovc:
        Attach and exploit offset-value codes throughout.
    page_manager:
        Destination for spill accounting; a private one is created when
        omitted.
    """

    def __init__(
        self,
        key_positions: Sequence[int],
        memory_capacity: int = 4096,
        fan_in: int = 16,
        run_generation: str = "replacement",
        use_ovc: bool = True,
        directions: Sequence[bool] | None = None,
        page_manager: PageManager | None = None,
    ) -> None:
        if fan_in < 2:
            raise ValueError("fan-in must be at least 2")
        if run_generation not in ("replacement", "load_sort"):
            raise ValueError(f"unknown run generation mode {run_generation!r}")
        self.key_positions = tuple(key_positions)
        self.memory_capacity = memory_capacity
        self.fan_in = fan_in
        self.run_generation = run_generation
        self.use_ovc = use_ovc
        self.directions = directions
        self.pages = page_manager if page_manager is not None else PageManager()

    def sort(self, rows: Sequence[tuple]) -> SortResult:
        with TRACER.span(
            "extsort.sort",
            rows=len(rows),
            capacity=self.memory_capacity,
            fan_in=self.fan_in,
        ):
            return self._sort(rows)

    def _sort(self, rows: Sequence[tuple]) -> SortResult:
        rungen_stats = ComparisonStats()
        merge_stats = ComparisonStats()
        io_before = self.pages.stats.snapshot()

        with TRACER.span(
            "extsort.run_generation", mode=self.run_generation
        ) as span:
            if self.run_generation == "replacement" and self.use_ovc:
                runs = generate_runs_replacement_selection(
                    rows,
                    self.memory_capacity,
                    self.key_positions,
                    rungen_stats,
                    self.directions,
                )
            else:
                runs = generate_runs_load_sort(
                    rows,
                    self.memory_capacity,
                    self.key_positions,
                    rungen_stats,
                    self.directions,
                    self.use_ovc,
                )
            span.set(runs=len(runs))
        initial_runs = len(runs)
        if METRICS.enabled:
            run_rows = METRICS.histogram("extsort.run_rows")
            for run, _ovcs in runs:
                run_rows.observe(len(run))
        if len(runs) <= 1:
            # Purely internal sort: no spill, no merge phase.
            out_rows, out_ovcs = runs[0] if runs else ([], [] if self.use_ovc else None)
            return SortResult(
                list(out_rows),
                list(out_ovcs) if out_ovcs is not None else None,
                rungen_stats,
                merge_stats,
                IoStats(),
                initial_runs,
                0,
            )

        # Spill initial runs (run generation writes them out).  Under a
        # memory budget the buffered runs are charged while live and
        # released as they move to storage — run generation is one of
        # the big buffering sites the accountant watches.
        accountant = memory.current()
        if accountant is not None:
            for run, run_ovcs in runs:
                accountant.charge(
                    "extsort.runs", memory.rows_nbytes(run, run_ovcs)
                )
        spilled = []
        for run, run_ovcs in runs:
            spilled.append(self.pages.spill_run(run, run_ovcs))
            if accountant is not None:
                accountant.release(
                    "extsort.runs", memory.rows_nbytes(run, run_ovcs)
                )

        levels = 0
        while len(spilled) > 1:
            levels += 1
            fan_in = self.fan_in
            if accountant is not None and accountant.over_budget():
                # Graceful degradation under budget pressure: halve the
                # merge wave (never below binary) so a step's working
                # set — fan_in run buffers plus the merged output —
                # shrinks, at the price of extra merge levels.
                fan_in = max(2, self.fan_in // 2)
                if METRICS.enabled:
                    METRICS.counter("exec.fan_in_reduced").inc()
            final_pass = len(spilled) <= fan_in
            with TRACER.span(
                "extsort.merge_pass",
                level=levels,
                runs_in=len(spilled),
                fan_in=fan_in,
            ):
                next_level = []
                for start in range(0, len(spilled), fan_in):
                    group = spilled[start : start + fan_in]
                    if METRICS.enabled:
                        METRICS.histogram("extsort.fan_in").observe(len(group))
                    with TRACER.span("extsort.merge_step", fan_in=len(group)):
                        run_data = [run.read() for run in group]
                        step_bytes = 0
                        if accountant is not None:
                            step_bytes = sum(
                                memory.rows_nbytes(r, o) for r, o in run_data
                            )
                            accountant.charge("extsort.merge", step_bytes)
                        merged_rows, merged_ovcs = kway_merge(
                            run_data,
                            self.key_positions,
                            merge_stats,
                            self.directions,
                            self.use_ovc,
                        )
                        if accountant is not None:
                            accountant.release("extsort.merge", step_bytes)
                    if not final_pass:
                        # Intermediate merge step: result goes back to
                        # storage.
                        next_level.append(
                            self.pages.spill_run(merged_rows, merged_ovcs)
                        )
                        if METRICS.enabled:
                            METRICS.counter("extsort.respilled_rows").inc(
                                len(merged_rows)
                            )
                    else:
                        # Final merge streams to the consumer — no
                        # write-back.
                        final = (merged_rows, merged_ovcs)
            if not final_pass:
                spilled = next_level
            else:
                break

        return SortResult(
            final[0],
            final[1],
            rungen_stats,
            merge_stats,
            self.pages.stats - io_before,
            initial_runs,
            levels,
        )
