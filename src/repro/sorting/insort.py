"""In-sort duplicate removal and aggregation.

Graefe & Do (EDBT 2023) extend offset-value codes to the *in-sort*
logic of "distinct" and "group by": when sorting anyway, duplicates
should collapse as early as possible — inside run generation and after
every merge level — so later levels move and compare less data.  The
codes make detection free: a row is a duplicate of its predecessor
exactly when its offset reaches the key arity.

:func:`external_sort_grouped` runs a full external merge sort over
grouping keys, folding aggregate state at every level.  On inputs with
heavy duplication the data volume collapses after the first level,
which is precisely the early-aggregation effect.
"""

from __future__ import annotations

from typing import Sequence

from ..aggregates import AGG_FINISH, AGG_INIT, AGG_MERGE, AGG_STEP
from ..ovc.stats import ComparisonStats
from ..storage.pages import PageManager
from .merge import kway_merge
from .run_generation import generate_runs_load_sort


def _collapse(
    rows: Sequence[tuple],
    ovcs: Sequence[tuple],
    arity: int,
    aggs,
    stats: ComparisonStats,
) -> tuple[list[tuple], list[tuple]]:
    """Fold runs of duplicate keys into one row of aggregate state.

    Rows are ``key + state`` tuples; duplicates are found from codes
    (offset >= arity) without any comparison.
    """
    out_rows: list[tuple] = []
    out_ovcs: list[tuple] = []
    for row, ovc in zip(rows, ovcs):
        if out_rows and ovc[0] >= arity:
            prev = out_rows[-1]
            merged = tuple(
                AGG_MERGE[fn](prev[arity + i], row[arity + i])
                for i, (fn, _c) in enumerate(aggs)
            )
            out_rows[-1] = prev[:arity] + merged
        else:
            out_rows.append(tuple(row))
            out_ovcs.append(ovc)
    stats.rows_moved += len(out_rows)
    return out_rows, out_ovcs


def external_sort_grouped(
    rows: Sequence[tuple],
    key_positions: Sequence[int],
    aggregates: Sequence[tuple] = (("count", None),),
    memory_capacity: int = 4096,
    fan_in: int = 16,
    stats: ComparisonStats | None = None,
    page_manager: PageManager | None = None,
) -> tuple[list[tuple], ComparisonStats, dict]:
    """External merge sort with early aggregation.

    Returns ``(result_rows, stats, info)`` where result rows are
    ``group key + one column per aggregate`` in key order, and ``info``
    records the data volume after each level (``rows_per_level``).
    ``avg`` is not supported (its state is not a scalar); compose it
    from ``sum`` and ``count``.
    """
    for fn, _col in aggregates:
        if fn not in AGG_MERGE:
            raise ValueError(
                f"aggregate {fn!r} cannot fold in-sort; use sum/count/min/"
                "max/first/last"
            )
    stats = stats if stats is not None else ComparisonStats()
    pages = page_manager if page_manager is not None else PageManager()
    arity = len(key_positions)

    # Seed rows: key columns + initial aggregate state.
    def seed(row: tuple) -> tuple:
        key = tuple(row[p] for p in key_positions)
        state = []
        for fn, col in aggregates:
            slot = AGG_INIT[fn]()
            AGG_STEP[fn](slot, None if col is None else row[col])
            state.append(AGG_FINISH[fn](slot))
        return key + tuple(state)

    seeded = [seed(row) for row in rows]
    seeded_positions = tuple(range(arity))

    levels: dict = {"rows_per_level": []}
    runs = generate_runs_load_sort(
        seeded, memory_capacity, seeded_positions, stats
    )
    # Collapse inside each initial run (in-sort distinct).
    collapsed = []
    for run_rows, run_ovcs in runs:
        collapsed.append(_collapse(run_rows, run_ovcs, arity, aggregates, stats))
    levels["rows_per_level"].append(sum(len(r) for r, _o in collapsed))
    spilled = [pages.spill_run(r, o) for r, o in collapsed]

    while len(spilled) > 1:
        next_level = []
        for start in range(0, len(spilled), fan_in):
            group = [run.read() for run in spilled[start : start + fan_in]]
            merged_rows, merged_ovcs = kway_merge(
                group, seeded_positions, stats
            )
            folded_rows, folded_ovcs = _collapse(
                merged_rows, merged_ovcs, arity, aggregates, stats
            )
            if len(spilled) > fan_in:
                next_level.append(pages.spill_run(folded_rows, folded_ovcs))
            else:
                levels["rows_per_level"].append(len(folded_rows))
                return folded_rows, stats, levels
        spilled = next_level
        levels["rows_per_level"].append(sum(len(r) for r in spilled))

    if spilled:
        final_rows, _ovcs = spilled[0].read()
        return list(final_rows), stats, levels
    return [], stats, levels
