"""Sorting substrate: tournament trees, run generation, merging, and
internal/external merge sort — all offset-value-code aware.
"""

from .tournament import Entry, TreeOfLosers
from .merge import kway_merge, merge_tables
from .internal import tournament_sort, quicksort_with_stats, sort_baseline
from .run_generation import (
    generate_runs_load_sort,
    generate_runs_replacement_selection,
)
from .external import ExternalMergeSort, SortResult
from .insort import external_sort_grouped

__all__ = [
    "Entry",
    "TreeOfLosers",
    "kway_merge",
    "merge_tables",
    "tournament_sort",
    "quicksort_with_stats",
    "sort_baseline",
    "generate_runs_load_sort",
    "generate_runs_replacement_selection",
    "ExternalMergeSort",
    "SortResult",
    "external_sort_grouped",
]
