"""Tree-of-losers priority queue (tournament tree), Figure 2.

A tournament tree over ``k`` merge inputs keeps, at every internal
node, the *loser* of the match played there; the overall winner sits at
the root.  Replacing the winner with the next row from its input and
replaying matches along the winner's leaf-to-root path costs one
comparison per tree level, so merging ``n`` rows from ``k`` inputs
costs about ``n * log2(k)`` row comparisons — nearly the lower bound.

Offset-value codes integrate naturally: every stored loser's code is
relative to the entry that defeated it most recently, and each
leaf-to-root pass walks exactly the path along which the previous
winner defeated everybody, so all comparisons on the pass share the
winner as their base.  The codes of popped winners are therefore valid
relative to the *previous* popped winner — i.e. they are exactly the
output's offset-value codes, for free.

The tree is agnostic to the comparison rule: callers inject a
comparator (see :func:`repro.ovc.compare.make_ovc_entry_comparator` and
:func:`~repro.ovc.compare.make_plain_entry_comparator`), which also
encapsulates fences, stability, and code maintenance.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from ..ovc.codes import FENCE


class Entry:
    """A competitor in the tournament.

    Attributes
    ----------
    keys:
        The row's sort key, projected into key order and normalized for
        direction — what comparators actually look at.
    code:
        Ascending tuple code relative to the comparator's current base;
        ``None`` means "not yet formed" (fresh rows in run generation).
    row:
        The full row payload; ``None`` marks a fence (exhausted input).
    run:
        Input index — run identifier within the merge and the stable
        tie-break.
    extra:
        Free slot for callers (the order-modification merge parks each
        row's trailing duplicates here).
    """

    __slots__ = ("keys", "code", "row", "run", "extra")

    def __init__(self, keys, code, row, run, extra=None):
        self.keys = keys
        self.code = code
        self.row = row
        self.run = run
        self.extra = extra

    def is_fence(self) -> bool:
        return self.row is None

    def __repr__(self) -> str:
        if self.row is None:
            return f"Entry(fence, run={self.run})"
        return f"Entry(keys={self.keys!r}, code={self.code!r}, run={self.run})"


def fence(run: int) -> Entry:
    """An entry that loses against every real row."""
    return Entry(None, FENCE, None, run)


class TreeOfLosers:
    """Merge ``k`` entry streams into one, smallest first.

    ``inputs`` is a list of iterables of :class:`Entry`; input ``i``
    must produce entries with ``run == i`` whose codes are relative to
    the entry it produced just before (its run predecessor).  The first
    entry of every input must be coded relative to a common base below
    all inputs (e.g. the run's position in a shared input table, or the
    imaginary lowest row for freshly generated runs).

    ``compare(a, b)`` returns True when ``a`` wins and must store a
    refreshed code into the loser when it learns one.
    """

    def __init__(
        self,
        inputs: list[Iterable[Entry]],
        compare: Callable[[Entry, Entry], bool],
    ) -> None:
        self._compare = compare
        self._inputs: list[Iterator[Entry]] = [iter(s) for s in inputs]
        #: The most recently popped entry — the base against which input
        #: streams form codes for fresh rows (run generation).  Defined
        #: from construction so readers never race the first pop().
        self.last_winner: Entry | None = None
        k = len(inputs)
        width = 1
        while width < k:
            width <<= 1
        self._width = width
        # Slot 0 holds the overall winner; slots 1..width-1 hold losers.
        self._nodes: list[Entry | None] = [None] * max(width, 1)
        if k == 0:
            self._nodes[0] = fence(0)
            return
        for i in range(width):
            candidate = self._fetch(i) if i < k else fence(i)
            node = (width + i) >> 1
            while node >= 1:
                stored = self._nodes[node]
                if stored is None:
                    self._nodes[node] = candidate
                    candidate = None
                    break
                if not self._compare(candidate, stored):
                    # Candidate lost: it stays; the old loser moves up.
                    self._nodes[node] = candidate
                    candidate = stored
                node >>= 1
            if candidate is not None:
                self._nodes[0] = candidate
        if width == 1:
            # Single input: the lone entry is the winner directly.
            if self._nodes[0] is None:
                self._nodes[0] = fence(0)

    def _fetch(self, run: int) -> Entry:
        if run >= len(self._inputs):
            return fence(run)
        nxt = next(self._inputs[run], None)
        return nxt if nxt is not None else fence(run)

    def pop(self) -> Entry | None:
        """Remove and return the smallest entry, or None when drained."""
        winner = self._nodes[0]
        if winner is None or winner.row is None:
            return None
        # Publish the outgoing winner before fetching: input streams that
        # form codes for fresh rows (run generation) need it as the base.
        self.last_winner = winner
        candidate = self._fetch(winner.run)
        node = (self._width + winner.run) >> 1
        while node >= 1:
            stored = self._nodes[node]
            if stored is not None and not self._compare(candidate, stored):
                self._nodes[node] = candidate
                candidate = stored
            node >>= 1
        self._nodes[0] = candidate
        return winner

    def __iter__(self) -> Iterator[Entry]:
        while True:
            entry = self.pop()
            if entry is None:
                return
            yield entry

    @property
    def fan_in(self) -> int:
        return len(self._inputs)

    def render(self) -> str:
        """ASCII rendering of the tree state, level by level — slot 0
        (the winner) first, as in the paper's Figure 2."""

        def cell(entry: Entry | None) -> str:
            if entry is None:
                return "(empty)"
            if entry.row is None:
                return f"fence/run {entry.run}"
            return f"{entry.keys!r}/run {entry.run}"

        lines = [f"winner: {cell(self._nodes[0])}"]
        level, start = 1, 1
        while start < self._width:
            nodes = self._nodes[start : start * 2]
            lines.append(
                f"level {level} losers: "
                + "  ".join(cell(n) for n in nodes)
            )
            start *= 2
            level += 1
        return "\n".join(lines)
