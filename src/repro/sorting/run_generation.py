"""Run generation for external merge sort.

Two classic strategies:

* **Replacement selection** — a tournament tree of ``capacity`` entries
  streams rows through memory; rows smaller than the last output are
  deferred to the next run, so runs average twice the memory size on
  random input.  The run number is treated as an artificial leading key
  column, which lets the ordinary offset-value code machinery cover the
  run logic: a fresh row's code relative to the row it replaces (the
  winner just popped, i.e. the last output) is formed once on entry —
  the mainframe CFC operation — and cached from then on.
* **Load-sort-store** — fill memory, sort (tournament sort, producing
  codes), emit the run; runs equal the memory size.

Both return runs as ``(rows, ovcs)`` pairs ready for
:func:`repro.sorting.merge.kway_merge`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from ..obs import TRACER
from ..ovc.codes import DUPLICATE, code_to_ovc
from ..ovc.compare import form_code, make_ovc_entry_comparator
from ..ovc.stats import ComparisonStats
from .internal import tournament_sort
from .merge import _key_projector
from .tournament import Entry, TreeOfLosers


def generate_runs_load_sort(
    rows: Sequence[tuple],
    capacity: int,
    key_positions: Sequence[int],
    stats: ComparisonStats,
    directions: Sequence[bool] | None = None,
    use_ovc: bool = True,
) -> list[tuple[list[tuple], list[tuple] | None]]:
    """Quicksort-style run generation: sort memory loads one at a time."""
    if capacity < 1:
        raise ValueError("capacity must be at least 1")
    runs: list[tuple[list[tuple], list[tuple] | None]] = []
    with TRACER.span(
        "rungen.load_sort", rows=len(rows), capacity=capacity
    ) as span:
        for start in range(0, len(rows), capacity):
            chunk = rows[start : start + capacity]
            with TRACER.span("rungen.sort_chunk", rows=len(chunk)):
                sorted_rows, ovcs = tournament_sort(
                    chunk, key_positions, stats, directions, use_ovc
                )
            runs.append((sorted_rows, ovcs))
        span.set(runs=len(runs))
    return runs


def generate_runs_replacement_selection(
    rows: Iterable[tuple],
    capacity: int,
    key_positions: Sequence[int],
    stats: ComparisonStats,
    directions: Sequence[bool] | None = None,
) -> list[tuple[list[tuple], list[tuple]]]:
    """Replacement selection with a tournament tree and offset-value codes.

    The sort key is extended with a leading artificial run-number
    column, so the tree's comparator needs no special run handling —
    offsets simply shift by one.  Output codes fall out of the tree as
    usual and are shifted back to the real key's arity on emission.
    """
    if capacity < 1:
        raise ValueError("capacity must be at least 1")
    with TRACER.span("rungen.replacement", capacity=capacity) as span:
        runs = _replacement_selection(
            rows, capacity, key_positions, stats, directions
        )
        span.set(runs=len(runs))
    return runs


def _replacement_selection(rows, capacity, key_positions, stats, directions):
    positions = tuple(key_positions)
    arity = len(positions)
    ext_arity = arity + 1
    project = _key_projector(positions, directions)
    compare = make_ovc_entry_comparator(ext_arity, stats)

    source: Iterator[tuple] = iter(rows)

    # Fill memory.  Initial entries carry no codes; their first
    # comparison inside the tree forms them (all start in run 0, so any
    # pair shares the imaginary common base).
    initial: list[Entry] = []
    for slot in range(capacity):
        row = next(source, None)
        if row is None:
            break
        initial.append(Entry((0,) + project(row), None, row, slot))
    if not initial:
        return []

    tree_box: list[TreeOfLosers] = []

    def admit(row: tuple, slot: int) -> Entry:
        """Assign a run number and form the fresh row's code (CFC).

        The base is the winner being popped right now — the row this
        fresh row replaces, which is also the most recent output, and
        the row relative to which every loser on the refill path is
        coded.
        """
        keys = project(row)
        base = tree_box[0].last_winner.keys
        relation, code = form_code((base[0],) + keys, base, ext_arity, stats)
        if relation < 0:
            # Smaller than the last output: defer to the next run.  The
            # artificial run-number column differs at offset 0.
            run_nr = base[0] + 1
            return Entry((run_nr,) + keys, (ext_arity, run_nr), row, slot)
        if relation == 0:
            code = DUPLICATE
        return Entry((base[0],) + keys, code, row, slot)

    def feeder(slot: int) -> Iterator[Entry]:
        yield initial[slot]
        while True:
            row = next(source, None)
            if row is None:
                return
            yield admit(row, slot)

    tree = TreeOfLosers([feeder(i) for i in range(len(initial))], compare)
    tree_box.append(tree)

    runs: list[tuple[list[tuple], list[tuple]]] = []
    current_rows: list[tuple] = []
    current_ovcs: list[tuple] = []
    current_run_nr = 0
    last_keys: tuple | None = None

    for entry in tree:
        run_nr = entry.keys[0]
        if run_nr != current_run_nr:
            if current_rows:
                runs.append((current_rows, current_ovcs))
                current_rows, current_ovcs = [], []
            current_run_nr = run_nr
        current_rows.append(entry.row)
        stats.rows_moved += 1
        if not current_ovcs:
            # First row of a run: coded against the imaginary lowest row.
            current_ovcs.append((0, entry.keys[1]))
        elif entry.code is None:
            _rel, code = form_code(entry.keys, last_keys, ext_arity, stats)
            current_ovcs.append(_shift_ovc(code_to_ovc(code, ext_arity), arity))
        else:
            current_ovcs.append(_shift_ovc(code_to_ovc(entry.code, ext_arity), arity))
        last_keys = entry.keys
    if current_rows:
        runs.append((current_rows, current_ovcs))
    return runs


def _shift_ovc(ext_ovc: tuple, arity: int) -> tuple:
    """Drop the artificial run-number column from a paper-form code."""
    offset, value = ext_ovc
    if offset >= arity + 1:
        return (arity, 0)
    if offset == 0:
        # "Differs in run number" appears only on a run's first row,
        # which the caller codes explicitly; defensive fallback.
        return (0, value)
    return (offset - 1, value)
