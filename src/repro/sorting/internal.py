"""Internal (in-memory) sorts with shared instrumentation.

Three flavors:

* :func:`tournament_sort` — tree-of-losers over single-row runs, with
  offset-value codes formed on the fly (or injected by the caller, as
  segmented sorting does).  Produces output codes for free.
* :func:`quicksort_with_stats` — comparison-counted Python sort, the
  honest baseline for comparison counts.
* :func:`sort_baseline` — plain ``sorted()`` for wall-clock baselines
  where counting would distort timing.
"""

from __future__ import annotations

from functools import cmp_to_key
from typing import Sequence

from ..ovc.compare import compare_plain
from ..ovc.stats import ComparisonStats
from .merge import _key_projector, kway_merge


def tournament_sort(
    rows: Sequence[tuple],
    key_positions: Sequence[int],
    stats: ComparisonStats,
    directions: Sequence[bool] | None = None,
    use_ovc: bool = True,
    entry_ovcs: Sequence[tuple] | None = None,
) -> tuple[list[tuple], list[tuple] | None]:
    """Sort rows with a tournament tree; returns ``(rows, ovcs)``.

    Every row enters as its own single-row run.  When ``entry_ovcs`` is
    given (paper-form codes valid against a common base for all rows,
    e.g. within one segment), comparisons start from those codes;
    otherwise codes are formed by the first full comparison each row
    participates in.
    """
    if entry_ovcs is not None:
        runs = [([row], [ovc]) for row, ovc in zip(rows, entry_ovcs)]
    else:
        runs = [([row], None) for row in rows]
    return kway_merge(runs, key_positions, stats, directions, use_ovc)


def quicksort_with_stats(
    rows: Sequence[tuple],
    key_positions: Sequence[int],
    stats: ComparisonStats,
    directions: Sequence[bool] | None = None,
) -> list[tuple]:
    """Python's sort driven by an instrumented three-way comparison."""
    project = _key_projector(key_positions, directions)
    keyed = [(project(row), row) for row in rows]

    def cmp(a, b) -> int:
        return compare_plain(a[0], b[0], stats)

    keyed.sort(key=cmp_to_key(cmp))
    return [row for _keys, row in keyed]


def sort_baseline(
    rows: Sequence[tuple],
    key_positions: Sequence[int],
    directions: Sequence[bool] | None = None,
) -> list[tuple]:
    """Fast uninstrumented sort (wall-clock baseline)."""
    project = _key_projector(key_positions, directions)
    return sorted(rows, key=project)
