"""Aggregate-function primitives shared by the engine and the sorter.

Each function is a triple of init/step/finish over a small mutable
state slot, plus (where meaningful) a merge of two finished scalars for
in-sort early aggregation.  Kept dependency-free so both
:mod:`repro.engine.aggregate` and :mod:`repro.sorting.insort` can use
them without import cycles.
"""

from __future__ import annotations


def _avg_finish(slot):
    return slot[0] / slot[1] if slot[1] else None


AGG_INIT = {
    "count": lambda: [0],
    "sum": lambda: [0],
    "min": lambda: [None],
    "max": lambda: [None],
    "avg": lambda: [0, 0],
    "first": lambda: [None, False],
    "last": lambda: [None],
}

AGG_STEP = {
    "count": lambda s, v: s.__setitem__(0, s[0] + 1),
    "sum": lambda s, v: s.__setitem__(0, s[0] + v),
    "min": lambda s, v: s.__setitem__(0, v if s[0] is None or v < s[0] else s[0]),
    "max": lambda s, v: s.__setitem__(0, v if s[0] is None or v > s[0] else s[0]),
    "avg": lambda s, v: (s.__setitem__(0, s[0] + v), s.__setitem__(1, s[1] + 1)),
    "first": lambda s, v: None
    if s[1]
    else (s.__setitem__(0, v), s.__setitem__(1, True)),
    "last": lambda s, v: s.__setitem__(0, v),
}

AGG_FINISH = {
    "count": lambda s: s[0],
    "sum": lambda s: s[0],
    "min": lambda s: s[0],
    "max": lambda s: s[0],
    "avg": _avg_finish,
    "first": lambda s: s[0],
    "last": lambda s: s[0],
}

#: Combining two *finished* scalars — only for states that fold
#: losslessly (``avg`` does not; compose it from sum and count).
AGG_MERGE = {
    "count": lambda a, b: a + b,
    "sum": lambda a, b: a + b,
    "min": lambda a, b: a if a <= b else b,
    "max": lambda a, b: a if a >= b else b,
    "first": lambda a, b: a,
    "last": lambda a, b: b,
}
