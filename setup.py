"""Shim for environments without the `wheel` package (offline installs):
`pip install -e . --no-build-isolation --no-use-pep517` falls back to
`setup.py develop`, which needs this file."""
from setuptools import setup

setup()
